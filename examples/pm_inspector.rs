//! Inspect what an index actually does to the device.
//!
//! Two subcommands:
//!
//! * `footprint` (default) — run one operation of each kind against
//!   FPTree and print the exact PM read/write/flush/fence footprint,
//!   including redundant flushes — the per-operation cost model the
//!   paper's analysis sections reason about.
//! * `crashpoints` — systematic crash-point exploration: count the
//!   persistence events of a mixed workload, crash at every boundary,
//!   recover, and verify the oracle invariant (see `crates/crashpoint`).
//!
//! ```sh
//! cargo run --release --example pm_inspector
//! cargo run --release --example pm_inspector -- crashpoints --kind wbtree --ops 200
//! cargo run --release --example pm_inspector -- crashpoints --kind all --ops 100 --chaos
//! ```
//!
//! `crashpoints` flags: `--kind <name|all>`, `--ops N`, `--key-range N`,
//! `--seed N`, `--chaos`, `--stride N`, `--max-boundaries N`.

use std::sync::Arc;

use pm_index_bench::crashpoint::{self, ExploreOptions, PM_KINDS};
use pm_index_bench::fptree::{FpTree, FpTreeConfig};
use pm_index_bench::index_api::RangeIndex;
use pm_index_bench::pibench::report::Table;
use pm_index_bench::pmalloc::{AllocMode, PmAllocator};
use pm_index_bench::pmem::{PmConfig, PmPool};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("footprint") => footprint(),
        Some("crashpoints") => crashpoints(&args[1..]),
        Some(other) => {
            eprintln!("unknown subcommand {other:?}; expected `footprint` or `crashpoints`");
            std::process::exit(2);
        }
    }
}

fn footprint() {
    let pool = Arc::new(PmPool::new(64 << 20, PmConfig::real()));
    let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
    let tree = FpTree::create(alloc, FpTreeConfig::default());
    for k in 0..100_000u64 {
        tree.insert(k * 2, k);
    }

    let mut table = Table::new(vec![
        "operation",
        "PM reads",
        "read B",
        "PM writes",
        "write B",
        "clwb",
        "clwb redundant",
        "fence",
        "media rd B",
        "media wr B",
    ]);
    let mut probe = |label: &str, f: &dyn Fn()| {
        pool.reset_stats();
        f();
        let s = pool.stats();
        table.row(vec![
            label.to_string(),
            s.read_ops.to_string(),
            s.read_bytes.to_string(),
            s.write_ops.to_string(),
            s.write_bytes.to_string(),
            s.clwb.to_string(),
            s.clwb_redundant.to_string(),
            s.fence.to_string(),
            s.media_read_bytes.to_string(),
            s.media_write_bytes.to_string(),
        ]);
    };

    probe("lookup (hit)", &|| {
        tree.lookup(50_000);
    });
    probe("lookup (miss)", &|| {
        tree.lookup(50_001);
    });
    probe("insert (no split)", &|| {
        tree.insert(50_001, 1);
    });
    probe("update", &|| {
        tree.update(50_000, 2);
    });
    probe("remove", &|| {
        tree.remove(50_001);
    });
    probe("scan 100", &|| {
        let mut out = Vec::new();
        tree.scan(10_000, 100, &mut out);
    });

    println!("FPTree per-operation PM footprint (100k records prefilled):\n");
    print!("{}", table.to_text());
    println!(
        "\nNote the fingerprint effect: a miss touches almost no key words, \
         and the insert's cost is dominated by the record flush + the \
         atomic bitmap publication (2 fence rounds). A non-zero redundant \
         clwb count would flag lines flushed while already clean."
    );
}

fn flag_value(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{name} expects an integer, got {v:?}");
                std::process::exit(2);
            })
        })
}

fn crashpoints(args: &[String]) {
    let kind_arg = args
        .iter()
        .position(|a| a == "--kind")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    let kinds: Vec<&str> = if kind_arg == "all" {
        PM_KINDS.to_vec()
    } else if PM_KINDS.contains(&kind_arg.as_str()) {
        vec![PM_KINDS.iter().find(|k| **k == kind_arg).copied().unwrap()]
    } else {
        eprintln!("--kind expects one of {PM_KINDS:?} or `all`, got {kind_arg:?}");
        std::process::exit(2);
    };
    let ops = flag_value(args, "--ops").unwrap_or(200);
    let key_range = flag_value(args, "--key-range").unwrap_or(128);
    let seed = flag_value(args, "--seed").unwrap_or(1);
    let stride = flag_value(args, "--stride").unwrap_or(1);
    let max_boundaries = flag_value(args, "--max-boundaries");
    let chaos = args.iter().any(|a| a == "--chaos");

    let mut table = Table::new(vec![
        "index",
        "chaos",
        "events",
        "boundaries",
        "crashes",
        "completed",
        "clwb/nt/fence",
        "max dirty lines",
        "redundant clwb",
        "failures",
    ]);
    let mut any_failures = false;
    for kind in kinds {
        let opts = ExploreOptions {
            kind: kind.to_string(),
            ops,
            key_range,
            seed,
            chaos_seed: chaos.then_some(seed ^ 0x9e3779b97f4a7c15),
            stride,
            max_boundaries,
            ..ExploreOptions::default()
        };
        let s = crashpoint::explore(&opts);
        println!(
            "{kind}: {} events over {} ops; per-op windows: {}",
            s.total_events,
            ops,
            s.per_op
                .iter()
                .map(|(k, v)| format!("{k} {} ops / {} events", v.count, v.events))
                .collect::<Vec<_>>()
                .join(", ")
        );
        for f in &s.failures {
            any_failures = true;
            println!(
                "  FAIL at boundary {} ({}): {}",
                f.boundary,
                f.report
                    .map(|r| r.trigger.to_string())
                    .unwrap_or_else(|| "no trip".to_string()),
                f.detail
            );
        }
        table.row(vec![
            s.kind.clone(),
            s.chaos.to_string(),
            s.total_events.to_string(),
            s.boundaries_tested.to_string(),
            s.crashes_fired.to_string(),
            s.completed_runs.to_string(),
            format!(
                "{}/{}/{}",
                s.trigger_histogram[0], s.trigger_histogram[1], s.trigger_histogram[2]
            ),
            s.max_dirty_lines.to_string(),
            s.probe_redundant_clwb.to_string(),
            s.failures.len().to_string(),
        ]);
    }
    println!("\nCrash-point exploration:\n");
    print!("{}", table.to_text());
    if any_failures {
        println!("\nRESULT: oracle violations found (see FAIL lines above).");
        std::process::exit(1);
    }
    println!(
        "\nRESULT: every explored crash window recovered correctly — no \
         acknowledged-but-unflushed state at any crash point."
    );
}
