//! Inspect what an index actually does to the device: run one
//! operation of each kind against FPTree and print the exact PM
//! read/write/flush/fence footprint — the per-operation cost model the
//! paper's analysis sections reason about.
//!
//! ```sh
//! cargo run --release --example pm_inspector
//! ```

use std::sync::Arc;

use pm_index_bench::fptree::{FpTree, FpTreeConfig};
use pm_index_bench::index_api::RangeIndex;
use pm_index_bench::pibench::report::Table;
use pm_index_bench::pmalloc::{AllocMode, PmAllocator};
use pm_index_bench::pmem::{PmConfig, PmPool};

fn main() {
    let pool = Arc::new(PmPool::new(64 << 20, PmConfig::real()));
    let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
    let tree = FpTree::create(alloc, FpTreeConfig::default());
    for k in 0..100_000u64 {
        tree.insert(k * 2, k);
    }

    let mut table = Table::new(vec![
        "operation",
        "PM reads",
        "read B",
        "PM writes",
        "write B",
        "clwb",
        "fence",
        "media rd B",
        "media wr B",
    ]);
    let mut probe = |label: &str, f: &dyn Fn()| {
        pool.reset_stats();
        f();
        let s = pool.stats();
        table.row(vec![
            label.to_string(),
            s.read_ops.to_string(),
            s.read_bytes.to_string(),
            s.write_ops.to_string(),
            s.write_bytes.to_string(),
            s.clwb.to_string(),
            s.fence.to_string(),
            s.media_read_bytes.to_string(),
            s.media_write_bytes.to_string(),
        ]);
    };

    probe("lookup (hit)", &|| {
        tree.lookup(50_000);
    });
    probe("lookup (miss)", &|| {
        tree.lookup(50_001);
    });
    probe("insert (no split)", &|| {
        tree.insert(50_001, 1);
    });
    probe("update", &|| {
        tree.update(50_000, 2);
    });
    probe("remove", &|| {
        tree.remove(50_001);
    });
    probe("scan 100", &|| {
        let mut out = Vec::new();
        tree.scan(10_000, 100, &mut out);
    });

    println!("FPTree per-operation PM footprint (100k records prefilled):\n");
    print!("{}", table.to_text());
    println!(
        "\nNote the fingerprint effect: a miss touches almost no key words, \
         and the insert's cost is dominated by the record flush + the \
         atomic bitmap publication (2 fence rounds)."
    );
}
