//! Five-minute tour: create an emulated PM pool, build FPTree on it,
//! do some work, crash the "machine", and recover.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use pm_index_bench::fptree::{FpTree, FpTreeConfig};
use pm_index_bench::index_api::RangeIndex;
use pm_index_bench::pmalloc::{AllocMode, PmAllocator};
use pm_index_bench::pmem::{PmConfig, PmPool};

fn main() {
    // 1. An emulated persistent-memory device: 64 MiB, full crash
    //    semantics, no latency injection (use PmConfig::optane_like()
    //    for benchmark-realistic timing).
    let pool = Arc::new(PmPool::new(64 << 20, PmConfig::real()));

    // 2. A persistent allocator on the pool (PMDK-style general mode).
    let alloc = PmAllocator::format(pool.clone(), AllocMode::General);

    // 3. FPTree: DRAM inner nodes, PM leaves with fingerprints.
    let tree = FpTree::create(alloc, FpTreeConfig::default());

    for k in 0..10_000u64 {
        assert!(tree.insert(k, k * 2));
    }
    tree.update(42, 999);
    tree.remove(7);

    assert_eq!(tree.lookup(42), Some(999));
    assert_eq!(tree.lookup(7), None);

    let mut out = Vec::new();
    tree.scan(100, 5, &mut out);
    println!("scan(100, 5) = {out:?}");

    let f = tree.footprint();
    println!("footprint: {f}");

    // 4. Power failure! Everything not flushed to the persisted image
    //    is gone, and so are all DRAM structures.
    drop(tree);
    pool.crash();

    // 5. Recovery: the allocator replays its redo slots; FPTree replays
    //    its split micro-log and rebuilds inner nodes from the leaf
    //    chain.
    let alloc = PmAllocator::recover(pool, AllocMode::General);
    let tree = FpTree::recover(alloc, FpTreeConfig::default());

    assert_eq!(tree.lookup(42), Some(999), "update survived the crash");
    assert_eq!(tree.lookup(7), None, "delete survived the crash");
    assert_eq!(tree.lookup(9_999), Some(19_998));
    println!("recovered: 10k records intact after simulated power loss ✓");
}
