//! Minimal vendored stand-in for `criterion`, providing the surface
//! this workspace's `benches/micro.rs` uses. It performs real (if
//! statistically unsophisticated) timing: warm-up, then timed batches
//! until the measurement budget is spent, reporting mean ns/iter.

use std::time::{Duration, Instant};

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        run_bench(self, &id, f);
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_bench(self.criterion, &id, f);
        self
    }

    pub fn finish(self) {}
}

/// How `iter_batched` amortizes setup; only a hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    /// Iterations to run in the next timed pass.
    iters: u64,
    /// Measured wall time of the pass.
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let inputs: Vec<I> = (0..self.iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            std::hint::black_box(routine(input));
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        _size: BatchSize,
    ) {
        let mut inputs: Vec<I> = (0..self.iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in &mut inputs {
            std::hint::black_box(routine(input));
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench(c: &Criterion, id: &str, mut f: impl FnMut(&mut Bencher)) {
    // Warm-up: also calibrates how many iterations fit in one sample.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    while warm_start.elapsed() < c.warm_up_time {
        f(&mut b);
        per_iter = (b.elapsed / b.iters.max(1) as u32).max(Duration::from_nanos(1));
        // Grow the batch until one call is ~1/10 of the warm-up budget.
        let target = c.warm_up_time / 10;
        let want = (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;
        if b.iters >= want {
            break;
        }
        b.iters = want;
    }

    let sample_budget = c.measurement_time / c.sample_size.max(1) as u32;
    let iters_per_sample =
        (sample_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;

    let mut total_iters = 0u64;
    let mut total_time = Duration::ZERO;
    let measure_start = Instant::now();
    let mut samples = Vec::with_capacity(c.sample_size);
    while samples.len() < c.sample_size && measure_start.elapsed() < c.measurement_time {
        b.iters = iters_per_sample;
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
        total_iters += b.iters;
        total_time += b.elapsed;
    }

    let mean = if total_iters > 0 {
        total_time.as_nanos() as f64 / total_iters as f64
    } else {
        f64::NAN
    };
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples.get(samples.len() / 2).copied().unwrap_or(f64::NAN);
    println!(
        "{id:<48} mean {mean:>12.1} ns/iter  median {median:>12.1} ns/iter  ({} samples)",
        samples.len()
    );
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loop_terminates_quickly() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(10))
            .measurement_time(Duration::from_millis(30));
        let mut g = c.benchmark_group("smoke");
        let mut x = 0u64;
        g.bench_function("add", |b| b.iter(|| x = x.wrapping_add(1)));
        g.bench_function("batched", |b| {
            b.iter_batched(|| 3u64, |v| v * 2, BatchSize::SmallInput)
        });
        g.finish();
    }
}
