//! Minimal vendored stand-in for `crossbeam-epoch`, providing the
//! surface this workspace uses: `pin`, `Guard::{defer, defer_destroy}`,
//! `Atomic`, `Owned`, `Shared` and `unprotected`.
//!
//! Reclamation strategy: instead of upstream's per-thread epoch
//! machinery, deferred closures are tagged with a global sequence
//! number taken at `defer` time and executed once no *active* guard
//! was pinned at or before that tag. This is strictly more
//! conservative than epoch-based reclamation (a closure never runs
//! while any guard that could have observed the unlinked pointer is
//! still pinned), at the cost of a global mutex on pin/unpin — an
//! acceptable trade for a test/bench substrate whose deferred work is
//! rare (SMO garbage only).

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::mem;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// Global registry
// ---------------------------------------------------------------------------

static NEXT_SEQ: AtomicU64 = AtomicU64::new(1);

struct Registry {
    /// Sequence numbers of currently pinned guards.
    active: BTreeSet<u64>,
    /// Deferred closures tagged with the sequence current at defer time.
    deferred: Vec<(u64, Box<dyn FnOnce() + Send>)>,
}

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    let mut slot = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    let reg = slot.get_or_insert_with(|| Registry {
        active: BTreeSet::new(),
        deferred: Vec::new(),
    });
    f(reg)
}

/// Run every deferred closure whose tag precedes the oldest active
/// guard. Closures run outside the registry lock so they may pin.
fn collect() {
    let ready: Vec<Box<dyn FnOnce() + Send>> = with_registry(|reg| {
        let min_active = reg.active.iter().next().copied().unwrap_or(u64::MAX);
        let mut ready = Vec::new();
        let mut keep = Vec::new();
        for (tag, f) in reg.deferred.drain(..) {
            if tag < min_active {
                ready.push(f);
            } else {
                keep.push((tag, f));
            }
        }
        reg.deferred = keep;
        ready
    });
    for f in ready {
        f();
    }
}

// ---------------------------------------------------------------------------
// Guard
// ---------------------------------------------------------------------------

/// A pinned region. Dropping the guard unpins and may run deferred
/// closures that became unreachable.
pub struct Guard {
    /// `None` for the `unprotected()` guard.
    seq: Option<u64>,
}

/// Pin the current thread.
pub fn pin() -> Guard {
    let seq = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
    with_registry(|reg| {
        reg.active.insert(seq);
    });
    Guard { seq: Some(seq) }
}

/// Returns a guard that performs no pinning; deferred functions run
/// immediately (upstream semantics).
///
/// # Safety
/// The caller must guarantee no other thread can concurrently access
/// the data structures touched through this guard.
pub unsafe fn unprotected() -> &'static Guard {
    static UNPROTECTED: Guard = Guard { seq: None };
    &UNPROTECTED
}

impl Guard {
    /// Defer `f` until all currently pinned guards are dropped.
    pub fn defer<F, R>(&self, f: F)
    where
        F: FnOnce() -> R,
        F: Send + 'static,
    {
        match self.seq {
            None => {
                f();
            }
            Some(_) => {
                let tag = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
                with_registry(|reg| {
                    reg.deferred.push((
                        tag,
                        Box::new(move || {
                            f();
                        }),
                    ));
                });
            }
        }
    }

    /// Defer dropping the heap allocation behind `ptr`.
    ///
    /// # Safety
    /// `ptr` must have originated from `Owned::new` / `Owned::into_*`
    /// and must not be reachable by readers after the current epoch.
    pub unsafe fn defer_destroy<T: 'static>(&self, ptr: Shared<'_, T>) {
        let raw = ptr.raw as usize;
        if raw == 0 {
            return;
        }
        self.defer(move || {
            drop(unsafe { Box::from_raw(raw as *mut T) });
        });
    }

    /// Flush/repin hooks kept for API compatibility.
    pub fn flush(&self) {
        collect();
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if let Some(seq) = self.seq {
            with_registry(|reg| {
                reg.active.remove(&seq);
            });
            collect();
        }
    }
}

// ---------------------------------------------------------------------------
// Pointer types
// ---------------------------------------------------------------------------

/// An owned heap allocation that can be published into an [`Atomic`].
pub struct Owned<T> {
    raw: *mut T,
}

impl<T> Owned<T> {
    pub fn new(value: T) -> Self {
        Owned {
            raw: Box::into_raw(Box::new(value)),
        }
    }

    pub fn into_box(self) -> Box<T> {
        let b = unsafe { Box::from_raw(self.raw) };
        mem::forget(self);
        b
    }

    pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
        let raw = self.raw;
        mem::forget(self);
        Shared {
            raw,
            _marker: PhantomData,
        }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        drop(unsafe { Box::from_raw(self.raw) });
    }
}

impl<T> std::ops::Deref for Owned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.raw }
    }
}

/// A pointer observed under a guard. Copyable; may be null.
pub struct Shared<'g, T> {
    raw: *mut T,
    _marker: PhantomData<(&'g (), *mut T)>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shared<'_, T> {}

impl<'g, T> Shared<'g, T> {
    pub fn null() -> Self {
        Shared {
            raw: ptr::null_mut(),
            _marker: PhantomData,
        }
    }

    pub fn is_null(&self) -> bool {
        self.raw.is_null()
    }

    pub fn as_raw(&self) -> *const T {
        self.raw
    }

    /// # Safety
    /// The pointer must be valid for the guard's lifetime.
    pub unsafe fn as_ref(&self) -> Option<&'g T> {
        unsafe { self.raw.as_ref() }
    }

    /// # Safety
    /// The pointer must be non-null and valid for the guard's lifetime.
    pub unsafe fn deref(&self) -> &'g T {
        unsafe { &*self.raw }
    }

    /// # Safety
    /// The caller must own the allocation exclusively.
    pub unsafe fn into_owned(self) -> Owned<T> {
        debug_assert!(!self.raw.is_null());
        Owned { raw: self.raw }
    }
}

/// Conversion into a raw pointer for publication (upstream's
/// `Pointer<T>` trait).
pub trait Pointer<T> {
    fn into_raw(self) -> *mut T;
}

impl<T> Pointer<T> for Owned<T> {
    fn into_raw(self) -> *mut T {
        let raw = self.raw;
        mem::forget(self);
        raw
    }
}

impl<T> Pointer<T> for Shared<'_, T> {
    fn into_raw(self) -> *mut T {
        self.raw
    }
}

/// An atomic nullable pointer to a heap allocation.
pub struct Atomic<T> {
    ptr: AtomicPtr<T>,
}

unsafe impl<T: Send + Sync> Send for Atomic<T> {}
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    pub fn null() -> Self {
        Atomic {
            ptr: AtomicPtr::new(ptr::null_mut()),
        }
    }

    pub fn new(value: T) -> Self {
        Atomic {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
        }
    }

    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            raw: self.ptr.load(ord),
            _marker: PhantomData,
        }
    }

    pub fn store<P: Pointer<T>>(&self, new: P, ord: Ordering) {
        self.ptr.store(new.into_raw(), ord);
    }

    pub fn swap<'g, P: Pointer<T>>(
        &self,
        new: P,
        ord: Ordering,
        _guard: &'g Guard,
    ) -> Shared<'g, T> {
        Shared {
            raw: self.ptr.swap(new.into_raw(), ord),
            _marker: PhantomData,
        }
    }
}

impl<T> Default for Atomic<T> {
    fn default() -> Self {
        Atomic::null()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn deferred_runs_after_last_guard_drops() {
        let ran = Arc::new(AtomicUsize::new(0));
        let outer = pin();
        {
            let inner = pin();
            let r = ran.clone();
            inner.defer(move || {
                r.fetch_add(1, Ordering::SeqCst);
            });
            drop(inner);
            // Outer guard predates the defer tag: must not run yet.
            assert_eq!(ran.load(Ordering::SeqCst), 0);
        }
        drop(outer);
        // Trigger a collection cycle.
        drop(pin());
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn atomic_swap_and_destroy() {
        let a: Atomic<u64> = Atomic::null();
        let g = pin();
        a.store(Owned::new(5), Ordering::Release);
        let s = a.load(Ordering::Acquire, &g);
        assert_eq!(unsafe { s.as_ref() }, Some(&5));
        let old = a.swap(Owned::new(6), Ordering::AcqRel, &g);
        unsafe { g.defer_destroy(old) };
        drop(g);
        let g = pin();
        let s = a.swap(Shared::null(), Ordering::AcqRel, &g);
        drop(unsafe { s.into_owned() });
    }

    #[test]
    fn unprotected_defer_runs_immediately() {
        let ran = Arc::new(AtomicUsize::new(0));
        let r = ran.clone();
        unsafe { unprotected() }.defer(move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }
}
