//! Minimal vendored stand-in for `crossbeam-utils`, providing only the
//! pieces this workspace uses. The build environment has no registry
//! access, so the handful of external APIs we rely on are reimplemented
//! here with identical semantics.

use core::fmt;
use core::ops::{Deref, DerefMut};

/// Pads and aligns a value to the length of a cache line (two lines on
/// x86-64, matching upstream's 128-byte alignment there, which also
/// defeats the adjacent-line prefetcher).
#[derive(Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

unsafe impl<T: Send> Send for CachePadded<T> {}
unsafe impl<T: Sync> Sync for CachePadded<T> {}

impl<T> CachePadded<T> {
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachePadded")
            .field("value", &self.value)
            .finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_at_least_cacheline() {
        assert!(core::mem::align_of::<CachePadded<u8>>() >= 64);
        let p = CachePadded::new(7u64);
        assert_eq!(*p, 7);
        assert_eq!(p.into_inner(), 7);
    }
}
