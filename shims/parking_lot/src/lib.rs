//! Minimal vendored stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the surface this workspace uses is provided: `Mutex` and
//! `RwLock` with parking_lot's *no-poisoning* semantics. The
//! no-poisoning behaviour is load-bearing for the crash-point
//! injection harness: a simulated power failure unwinds (panics) out
//! of an in-flight index operation while locks are held, and the
//! recovered tree must still be lockable by the verification pass.

use std::sync::{self, TryLockError};

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_survives_poisoning_panic() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, lock still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
