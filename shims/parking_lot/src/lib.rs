//! Minimal vendored stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the surface this workspace uses is provided: `Mutex` and
//! `RwLock` with parking_lot's *no-poisoning* semantics: every
//! `Err(PoisonError)` from the underlying `std::sync` primitive is
//! unwrapped with `into_inner()`, silently discarding the poison flag.
//!
//! Dropping poisoning is intentional and load-bearing for the
//! crash-point injection harness, not a convenience. A simulated power
//! failure (`pmem`'s `CrashPointHit`) unwinds out of an in-flight index
//! operation while DRAM-side locks are held — under multi-threaded
//! halt-on-crash mode, out of *every* worker thread at once. Poisoning
//! exists to flag possibly-inconsistent *volatile* state, but here all
//! volatile state is discarded after the crash anyway; what survives is
//! the persisted image, whose consistency is the recovery code's job.
//! A sticky poison bit would instead make the post-crash verification
//! pass (and any sibling thread still draining) panic on lock
//! acquisition — failures that exist only in the emulation, never on
//! real hardware where a power cut takes the locks' memory with it.

use std::sync::{self, TryLockError};

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_survives_poisoning_panic() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, lock still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn locks_stay_usable_after_a_crash_point_unwind() {
        // The real harness scenario: an armed pmem crash trips mid
        // operation and `CrashPointHit` unwinds through held guards.
        // Both lock types must remain acquirable afterwards, or the
        // recovery/verification pass could never run.
        use pmem::{PmConfig, PmPool};
        let pool = PmPool::new(1 << 16, PmConfig::real());
        let m = Mutex::new(0u32);
        let rw = RwLock::new(0u32);
        pool.arm_crash_after(1);
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock();
            let _w = rw.write();
            pool.write_u64(4096, 7);
            pool.persist(4096, 8); // trips the armed crash: CrashPointHit
        }));
        assert!(unwound.is_err(), "the armed crash point never fired");
        assert!(pool.crash_fired());
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
        *rw.write() += 1;
        assert_eq!(*rw.read(), 1);
        assert!(m.try_lock().is_some(), "try_lock must ignore poison too");
    }
}
