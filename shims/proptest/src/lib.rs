//! Minimal vendored stand-in for `proptest`, providing the surface
//! this workspace uses: `Strategy` + `prop_map`, range and tuple
//! strategies, `any`, `prop_oneof!`, `proptest::collection::vec`,
//! the `proptest!` test macro, `ProptestConfig` and the
//! `prop_assert*` macros.
//!
//! Generation is deterministic per (test, case) pair. Shrinking is
//! not implemented: a failing case reports its case number and seed so
//! it can be replayed exactly, which is what the workspace's CI needs
//! from property tests.

use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG (standalone so the shim has no deps)
// ---------------------------------------------------------------------------

/// SplitMix64-based generation source for strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

pub mod strategy {
    use super::TestRng;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            // Bounded rejection sampling; give up by returning the last
            // candidate (no shrinking machinery to report rejection).
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates in a row");
        }
    }

    /// Weighted union of boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
        total: u64,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            self.arms.last().unwrap().1.generate(rng)
        }
    }

    /// Helper used by `prop_oneof!` to erase arm types.
    pub fn weighted_arm<S>(w: u32, s: S) -> (u32, Box<dyn Strategy<Value = S::Value>>)
    where
        S: Strategy + 'static,
    {
        (w, Box::new(s))
    }

    /// Always produces clones of one value (`Just`).
    #[derive(Clone)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident / $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
    }
}

use strategy::Strategy;

// ---------------------------------------------------------------------------
// Range + primitive strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy_int!(i8, i16, i32, i64, isize);

/// `any::<T>()` — full-domain strategy for primitives.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

pub mod test_runner {
    pub use super::ProptestConfig as Config;
    use super::TestRng;

    #[derive(Debug)]
    pub struct TestCaseError {
        pub message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Drive `body` for `config.cases` deterministic cases.
    pub fn run(
        config: &super::ProptestConfig,
        test_name: &str,
        mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        // FNV-1a over the test name so each test gets its own stream.
        let mut name_hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            name_hash ^= b as u64;
            name_hash = name_hash.wrapping_mul(0x1_0000_0100_01b3);
        }
        for case in 0..config.cases as u64 {
            let seed = name_hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = TestRng::new(seed);
            if let Err(e) = body(&mut rng) {
                panic!("proptest '{test_name}' failed at case {case} (seed {seed:#x}): {e}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::weighted_arm($weight as u32, $strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::weighted_arm(1u32, $strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
}

/// The test-definition macro. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // Strategies are built once; generation is per-case.
                let strategies = ($($strat,)+);
                $crate::test_runner::run(&config, stringify!($name), |rng| {
                    $crate::__proptest_bind!(rng, strategies, ($($pat),+));
                    let body = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    };
                    body()
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

/// Internal: destructure the strategy tuple and generate one value per
/// pattern, in declaration order.
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, $strategies:ident, ($p0:pat)) => {
        let ($p0,) = {
            let (ref s0,) = $strategies;
            ($crate::strategy::Strategy::generate(s0, $rng),)
        };
    };
    ($rng:ident, $strategies:ident, ($p0:pat, $p1:pat)) => {
        let ($p0, $p1) = {
            let (ref s0, ref s1) = $strategies;
            (
                $crate::strategy::Strategy::generate(s0, $rng),
                $crate::strategy::Strategy::generate(s1, $rng),
            )
        };
    };
    ($rng:ident, $strategies:ident, ($p0:pat, $p1:pat, $p2:pat)) => {
        let ($p0, $p1, $p2) = {
            let (ref s0, ref s1, ref s2) = $strategies;
            (
                $crate::strategy::Strategy::generate(s0, $rng),
                $crate::strategy::Strategy::generate(s1, $rng),
                $crate::strategy::Strategy::generate(s2, $rng),
            )
        };
    };
    ($rng:ident, $strategies:ident, ($p0:pat, $p1:pat, $p2:pat, $p3:pat)) => {
        let ($p0, $p1, $p2, $p3) = {
            let (ref s0, ref s1, ref s2, ref s3) = $strategies;
            (
                $crate::strategy::Strategy::generate(s0, $rng),
                $crate::strategy::Strategy::generate(s1, $rng),
                $crate::strategy::Strategy::generate(s2, $rng),
                $crate::strategy::Strategy::generate(s3, $rng),
            )
        };
    };
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{Arbitrary, ProptestConfig};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Op {
        A(u64),
        B(u64),
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        let key = 0u64..100;
        prop_oneof![
            3 => key.clone().prop_map(Op::A),
            1 => (key, any::<u64>()).prop_map(|(k, v)| Op::B(k ^ v)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn vec_lengths_respect_bounds(ops in crate::collection::vec(arb_op(), 1..50)) {
            prop_assert!(!ops.is_empty());
            prop_assert!(ops.len() < 50);
        }

        #[test]
        fn ranges_in_bounds(k in 5u64..10, n in 1usize..4) {
            prop_assert!((5..10).contains(&k), "k={}", k);
            prop_assert!((1..4).contains(&n));
            prop_assert_eq!(k, k);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let s = arb_op();
        let mut a = crate::TestRng::new(1);
        let mut b = crate::TestRng::new(1);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
