//! Minimal vendored stand-in for `rand` 0.8, providing only the
//! surface this workspace uses: `rngs::SmallRng`, `SeedableRng`,
//! `RngCore` and the `Rng` extension trait with `gen`/`gen_range`.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — the same
//! construction real `rand` uses for `SmallRng` on 64-bit targets —
//! so statistical quality matches what the benchmarks assume. Streams
//! are deterministic for a given seed but are NOT guaranteed to be
//! bit-identical to upstream `rand`; all workspace users only rely on
//! determinism, not on specific streams.

use core::ops::{Range, RangeInclusive};

/// Core randomness source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types samplable uniformly from a range (`Rng::gen_range`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_excl: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_excl: Self) -> Self {
                assert!(low < high_excl, "gen_range: empty range");
                let span = (high_excl as u64).wrapping_sub(low as u64);
                // Multiply-shift bounded sampling (Lemire); the tiny
                // modulo bias of plain multiply-shift is irrelevant for
                // workload generation, so skip the rejection loop.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low.wrapping_add(hi as $t)
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_excl: Self) -> Self {
                assert!(low < high_excl, "gen_range: empty range");
                let span = (high_excl as i64).wrapping_sub(low as i64) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low.wrapping_add(hi as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_excl: Self) -> Self {
        assert!(low < high_excl, "gen_range: empty range");
        let u: f64 = Standard::sample(rng);
        low + u * (high_excl - low)
    }
}

/// Range forms accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                if hi == <$t>::MAX && lo == <$t>::MIN {
                    return rng.next_u64() as $t;
                }
                if hi == <$t>::MAX {
                    // Shift down one to keep the exclusive form usable.
                    return <$t>::sample_range(rng, lo - 1, hi) + 1;
                }
                <$t>::sample_range(rng, lo, hi + 1)
            }
        }
    )*};
}
impl_sample_range_inclusive!(u8, u16, u32, u64, usize);

/// Extension trait with the ergonomic sampling methods.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u: f64 = Standard::sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind upstream `SmallRng` on
    /// 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4];
            }
            SmallRng { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }
}

pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0..100u32);
            assert!(w < 100);
            let x = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&x));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn covers_full_range() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
