//! # pm-index-bench
//!
//! Umbrella crate for the reproduction of *Evaluating Persistent Memory
//! Range Indexes* (PVLDB 13(4), 2019). It re-exports every workspace
//! crate so downstream users can depend on a single package:
//!
//! - [`pmem`]: the emulated persistent-memory substrate,
//! - [`pmalloc`]: the persistent allocator,
//! - [`pmwcas`]: persistent multi-word CAS,
//! - [`htm`]: software-emulated restricted transactional memory,
//! - [`index_api`]: the common range-index interface,
//! - the four evaluated indexes: [`fptree`], [`nvtree`], [`wbtree`],
//!   [`bztree`], the [`learned`] PGM-style fifth kind, plus the
//!   volatile [`dram_index`] baseline,
//! - [`obs`]: low-overhead PM event tracing, time-series sampling, and
//!   per-site traffic attribution,
//! - [`pibench`]: the benchmarking framework,
//! - [`crashpoint`]: systematic crash-point exploration — deterministic
//!   power failure at every persistence-event boundary, with recovery
//!   verification and a durability audit,
//! - [`net`]: the TCP serving layer — wire protocol, thread-per-core
//!   server with durable-ack batching and backpressure, remote
//!   workload driver (`pmserve` / `pmload`), and the crash-through-
//!   the-server durability sweep.
//!
//! See `examples/quickstart.rs` for a five-minute tour.
//!
//! ```
//! use std::sync::Arc;
//! use pm_index_bench::fptree::{FpTree, FpTreeConfig};
//! use pm_index_bench::index_api::RangeIndex;
//! use pm_index_bench::pmalloc::{AllocMode, PmAllocator};
//! use pm_index_bench::pmem::{PmConfig, PmPool};
//!
//! // An emulated PM device, a crash-safe allocator, and FPTree on top.
//! let pool = Arc::new(PmPool::new(16 << 20, PmConfig::real()));
//! let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
//! let tree = FpTree::create(alloc, FpTreeConfig::default());
//!
//! assert!(tree.insert(7, 70));
//! assert_eq!(tree.lookup(7), Some(70));
//!
//! // Power failure: everything unflushed and all DRAM state is lost...
//! drop(tree);
//! pool.crash();
//!
//! // ...and recovery brings the acknowledged state back.
//! let alloc = PmAllocator::recover(pool, AllocMode::General);
//! let tree = FpTree::recover(alloc, FpTreeConfig::default());
//! assert_eq!(tree.lookup(7), Some(70));
//! ```

pub use bztree;
pub use cache;
pub use crashpoint;
pub use dram_index;
pub use engine;
pub use fptree;
pub use htm;
pub use index_api;
pub use learned;
pub use net;
pub use nvtree;
pub use obs;
pub use pibench;
pub use pmalloc;
pub use pmem;
pub use pmwcas;
pub use wbtree;
