//! Property-based coherence tests for the DRAM hot-key cache tier:
//! arbitrary operation sequences through a [`CachedIndex`] must be
//! indistinguishable from the same sequence against the bare index —
//! the cache may only change *where* a lookup is served from, never
//! *what* it returns.

mod common;

use std::collections::BTreeMap;
use std::sync::Arc;

use common::PM_KINDS;
use pm_index_bench::cache::CachedIndex;
use pm_index_bench::index_api::RangeIndex;
use pm_index_bench::pmem::PmConfig;
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum CacheOp {
    Insert(u64, u64),
    Update(u64, u64),
    Remove(u64),
    Lookup(u64),
    Scan(u64, usize),
}

fn arb_cache_op() -> impl Strategy<Value = CacheOp> {
    // Narrow key range so lookups repeatedly hit cached entries that
    // mutations then invalidate — the stale-read failure mode.
    let key = 0u64..200;
    prop_oneof![
        3 => (key.clone(), any::<u64>()).prop_map(|(k, v)| CacheOp::Insert(k, v)),
        3 => key.clone().prop_map(CacheOp::Lookup),
        2 => (key.clone(), any::<u64>()).prop_map(|(k, v)| CacheOp::Update(k, v)),
        2 => key.clone().prop_map(CacheOp::Remove),
        1 => (key, 1usize..30).prop_map(|(k, n)| CacheOp::Scan(k, n)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10, // each case runs 5 PM indexes × hundreds of ops
        .. ProptestConfig::default()
    })]

    /// Every lookup and scan through the cache matches a plain
    /// `BTreeMap` model *at every step* — a stale cache line surviving
    /// a write-through mutation would diverge immediately.
    #[test]
    fn cached_ops_match_oracle(ops in proptest::collection::vec(arb_cache_op(), 1..400)) {
        for kind in PM_KINDS {
            let (inner, _pool) = common::fresh(kind, 64, PmConfig::real());
            let cached = CachedIndex::new(inner, 1 << 20);
            let mut model: BTreeMap<u64, u64> = BTreeMap::new();
            for &op in &ops {
                match op {
                    CacheOp::Insert(k, v) => {
                        let done = cached.insert(k, v);
                        prop_assert_eq!(done, !model.contains_key(&k), "{} insert({k})", kind);
                        model.entry(k).or_insert(v);
                    }
                    CacheOp::Update(k, v) => {
                        let done = cached.update(k, v);
                        prop_assert_eq!(done, model.contains_key(&k), "{} update({k})", kind);
                        if let Some(slot) = model.get_mut(&k) {
                            *slot = v;
                        }
                    }
                    CacheOp::Remove(k) => {
                        let done = cached.remove(k);
                        prop_assert_eq!(done, model.remove(&k).is_some(), "{} remove({k})", kind);
                    }
                    CacheOp::Lookup(k) => {
                        prop_assert_eq!(
                            cached.lookup(k),
                            model.get(&k).copied(),
                            "{} lookup({k}) served stale data",
                            kind
                        );
                    }
                    CacheOp::Scan(k, n) => {
                        let mut got = Vec::new();
                        cached.scan(k, n, &mut got);
                        let want: Vec<(u64, u64)> = model
                            .range(k..)
                            .take(n)
                            .map(|(&k, &v)| (k, v))
                            .collect();
                        prop_assert_eq!(got, want, "{} scan({k},{n})", kind);
                    }
                }
            }
        }
    }

    /// A tiny cache under heavy churn (forced evictions + refills) still
    /// never serves a value the underlying index does not hold.
    #[test]
    fn eviction_churn_never_goes_stale(
        seed_vals in proptest::collection::vec(any::<u64>(), 50..150),
        probes in proptest::collection::vec(0u64..200, 100..300),
    ) {
        let (inner, _pool) = common::fresh("fptree", 64, PmConfig::real());
        // Smallest tier the constructor accepts: slot pressure forces
        // CLOCK evictions with only ~hundreds of keys in play.
        let cached = CachedIndex::new(inner.clone(), 1);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for (i, &v) in seed_vals.iter().enumerate() {
            let k = i as u64;
            cached.insert(k, v);
            model.insert(k, v);
        }
        for (i, &k) in probes.iter().enumerate() {
            // Interleave mutations so eviction races invalidation.
            if i % 7 == 0 {
                let v = k.wrapping_mul(0x9e37);
                if cached.update(k, v) {
                    model.insert(k, v);
                }
            }
            prop_assert_eq!(cached.lookup(k), model.get(&k).copied(), "lookup({k})");
            prop_assert_eq!(cached.lookup(k), inner.lookup(k), "cache vs inner ({k})");
        }
    }
}

/// Concurrent coherence: per-key writer ownership with racing readers.
/// Readers must only ever observe a value their key's writer published
/// to the durable index — seqlock torn reads or missed invalidations
/// would surface as an unknown value.
#[test]
fn concurrent_readers_never_observe_torn_values() {
    let (inner, _pool) = common::fresh("fptree", 64, PmConfig::real());
    let cached = Arc::new(CachedIndex::new(inner, 1 << 20));
    const KEYS: u64 = 32;
    const ROUNDS: u64 = 400;
    for k in 0..KEYS {
        cached.insert(k, k << 32);
    }
    std::thread::scope(|s| {
        for w in 0..4u64 {
            let cached = Arc::clone(&cached);
            s.spawn(move || {
                // Writer w owns keys ≡ w (mod 4); values encode key+round.
                for r in 1..=ROUNDS {
                    for k in (w..KEYS).step_by(4) {
                        cached.update(k, (k << 32) | r);
                    }
                }
            });
        }
        for _ in 0..4 {
            let cached = Arc::clone(&cached);
            s.spawn(move || {
                for r in 0..ROUNDS {
                    for k in 0..KEYS {
                        let v = cached.lookup(k).expect("key vanished");
                        assert_eq!(v >> 32, k, "torn value {v:#x} for key {k}");
                        assert!(v & 0xffff_ffff <= ROUNDS, "round out of range: {v:#x}");
                    }
                    std::hint::black_box(r);
                }
            });
        }
    });
    let cc = cached.counters();
    assert!(cc.hits > 0, "cache never served a hit: {cc:?}");
}
