//! Shared helpers for the integration tests: index construction and
//! recovery across all workspace indexes.
//!
//! Each integration test binary uses a different subset of these
//! helpers, so the rest would trip `dead_code` per binary.
#![allow(dead_code)]

use std::sync::Arc;

use pm_index_bench::bztree::{BzTree, BzTreeConfig};
use pm_index_bench::dram_index::DramTree;
use pm_index_bench::fptree::{FpTree, FpTreeConfig};
use pm_index_bench::index_api::RangeIndex;
use pm_index_bench::learned::{LearnedConfig, LearnedIndex};
use pm_index_bench::nvtree::{NvTree, NvTreeConfig};
use pm_index_bench::pmalloc::{AllocMode, PmAllocator};
use pm_index_bench::pmem::{PmConfig, PmPool};
use pm_index_bench::wbtree::{WbTree, WbTreeConfig};

/// PM index kinds.
pub const PM_KINDS: [&str; 5] = ["fptree", "nvtree", "wbtree", "bztree", "learned"];
/// All kinds including the volatile baseline.
pub const ALL_KINDS: [&str; 6] = ["fptree", "nvtree", "wbtree", "bztree", "learned", "dram"];

/// Tight learned-index knobs: tiny ε, small delta log, multi-chunk
/// layouts — so integration workloads exercise many merges.
fn small_learned_cfg() -> LearnedConfig {
    LearnedConfig {
        epsilon: 4,
        delta_min_cap: 24,
        chunk_entries: 64,
    }
}

/// Small node configs so integration workloads exercise many splits.
pub fn create_small(kind: &str, alloc: Arc<PmAllocator>) -> Arc<dyn RangeIndex> {
    match kind {
        "fptree" => FpTree::create(
            alloc,
            FpTreeConfig {
                leaf_entries: 16,
                inner_fanout: 8,
                ..FpTreeConfig::default()
            },
        ),
        "nvtree" => NvTree::create(
            alloc,
            NvTreeConfig {
                leaf_entries: 16,
                pln_entries: 16,
            },
        ),
        "wbtree" => WbTree::create(
            alloc,
            WbTreeConfig {
                node_entries: 8,
                use_slot_array: true,
            },
        ),
        "bztree" => BzTree::create(
            alloc,
            BzTreeConfig {
                node_entries: 16,
                split_threshold_pct: 70,
            },
        ),
        "learned" => LearnedIndex::create(alloc, small_learned_cfg()),
        other => panic!("not a PM index: {other}"),
    }
}

/// Matching recovery entry points for [`create_small`].
pub fn recover_small(kind: &str, alloc: Arc<PmAllocator>) -> Arc<dyn RangeIndex> {
    match kind {
        "fptree" => FpTree::recover(
            alloc,
            FpTreeConfig {
                leaf_entries: 16,
                inner_fanout: 8,
                ..FpTreeConfig::default()
            },
        ),
        "nvtree" => NvTree::recover(
            alloc,
            NvTreeConfig {
                leaf_entries: 16,
                pln_entries: 16,
            },
        ),
        "wbtree" => WbTree::recover(
            alloc,
            WbTreeConfig {
                node_entries: 8,
                use_slot_array: true,
            },
        ),
        "bztree" => BzTree::recover(
            alloc,
            BzTreeConfig {
                node_entries: 16,
                split_threshold_pct: 70,
            },
        ),
        "learned" => LearnedIndex::recover(alloc, small_learned_cfg()),
        other => panic!("not a PM index: {other}"),
    }
}

/// A fresh small-node index on its own pool.
pub fn fresh(
    kind: &str,
    pool_mib: usize,
    cfg: PmConfig,
) -> (Arc<dyn RangeIndex>, Option<Arc<PmPool>>) {
    if kind == "dram" {
        return (Arc::new(DramTree::new()), None);
    }
    let pool = Arc::new(PmPool::new(pool_mib << 20, cfg));
    let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
    (create_small(kind, alloc), Some(pool))
}
