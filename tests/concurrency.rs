//! Concurrency integration tests across all concurrent indexes
//! (wB+Tree participates through its mutex wrapper).

mod common;

use common::{fresh, ALL_KINDS};
use pm_index_bench::pmem::PmConfig;

#[test]
fn concurrent_disjoint_inserts_land_exactly_once() {
    for kind in ALL_KINDS {
        let (idx, _pool) = fresh(kind, 128, PmConfig::real());
        let threads = 6u64;
        let per = 3_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let idx = &idx;
                s.spawn(move || {
                    for i in 0..per {
                        let k = t * 1_000_000 + i;
                        assert!(idx.insert(k, k + 1), "{kind} dup at {k}");
                    }
                });
            }
        });
        for t in 0..threads {
            for i in 0..per {
                let k = t * 1_000_000 + i;
                assert_eq!(idx.lookup(k), Some(k + 1), "{kind} key {k}");
            }
        }
        let mut out = Vec::new();
        assert_eq!(
            idx.scan(0, (threads * per) as usize + 10, &mut out),
            (threads * per) as usize,
            "{kind}"
        );
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0), "{kind}");
    }
}

#[test]
fn concurrent_same_key_inserts_one_winner() {
    for kind in ALL_KINDS {
        let (idx, _pool) = fresh(kind, 64, PmConfig::real());
        let wins = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..6 {
                let idx = &idx;
                let wins = &wins;
                s.spawn(move || {
                    for k in 0..1_000u64 {
                        if idx.insert(k, k) {
                            wins.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(
            wins.load(std::sync::atomic::Ordering::Relaxed),
            1_000,
            "{kind}: every key must have exactly one winning insert"
        );
    }
}

#[test]
fn concurrent_mixed_ops_preserve_scan_order() {
    for kind in ALL_KINDS {
        let (idx, _pool) = fresh(kind, 128, PmConfig::real());
        std::thread::scope(|s| {
            for t in 0..6u64 {
                let idx = &idx;
                s.spawn(move || {
                    let mut x = t + 3;
                    for i in 0..3_000u64 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let k = x % 2_048;
                        match i % 5 {
                            0 | 1 => {
                                idx.insert(k, i);
                            }
                            2 => {
                                idx.lookup(k);
                            }
                            3 => {
                                idx.update(k, i);
                            }
                            _ => {
                                let mut out = Vec::new();
                                idx.scan(k, 12, &mut out);
                                assert!(
                                    out.windows(2).all(|w| w[0].0 < w[1].0),
                                    "{kind}: disordered concurrent scan"
                                );
                            }
                        }
                    }
                });
            }
        });
    }
}

#[test]
fn readers_never_block_on_writers_progress() {
    // Liveness smoke test: continuous writers + a reader that must
    // finish a fixed amount of work in bounded time.
    for kind in ALL_KINDS {
        let (idx, _pool) = fresh(kind, 128, PmConfig::real());
        for k in 0..10_000u64 {
            idx.insert(k * 2, k);
        }
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            for t in 0..2u64 {
                let idx = &idx;
                let stop = &stop;
                s.spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        idx.insert(1_000_000 + t * 1_000_000 + i, i);
                        i += 1;
                    }
                });
            }
            let t0 = std::time::Instant::now();
            for k in 0..20_000u64 {
                idx.lookup(k);
            }
            let took = t0.elapsed();
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            assert!(
                took < std::time::Duration::from_secs(30),
                "{kind}: reader starved ({took:?})"
            );
        });
    }
}
