//! Cross-index conformance: every index must agree operation-by-
//! operation with the `BTreeMap` oracle, under several seeds and with
//! split-heavy small nodes.

mod common;

use common::{fresh, ALL_KINDS};
use pm_index_bench::index_api::oracle;
use pm_index_bench::pmem::PmConfig;

#[test]
fn all_indexes_match_the_oracle() {
    for kind in ALL_KINDS {
        let (idx, _pool) = fresh(kind, 64, PmConfig::real());
        oracle::check_conformance(&*idx, 0xA11CE, 25_000, 4_000);
    }
}

#[test]
fn conformance_under_multiple_seeds() {
    for kind in ALL_KINDS {
        for seed in [1u64, 2, 3] {
            let (idx, _pool) = fresh(kind, 64, PmConfig::real());
            oracle::check_conformance(&*idx, seed, 8_000, 1_000);
        }
    }
}

#[test]
fn conformance_with_narrow_key_range_stresses_collisions() {
    // A 64-key universe: constant duplicate inserts, repeated removes,
    // heavy re-insert-after-tombstone churn.
    for kind in ALL_KINDS {
        let (idx, _pool) = fresh(kind, 64, PmConfig::real());
        oracle::check_conformance(&*idx, 0xD00D, 20_000, 64);
    }
}

#[test]
fn conformance_with_eviction_chaos_enabled() {
    // Chaos mode persists random unflushed lines; runtime behaviour
    // must be completely unaffected (it only matters across crashes).
    for kind in common::PM_KINDS {
        let (idx, _pool) = fresh(kind, 64, PmConfig::real().with_eviction_chaos(99));
        oracle::check_conformance(&*idx, 0xC0DE, 10_000, 2_000);
    }
}

#[test]
fn scans_are_exact_at_boundaries() {
    for kind in ALL_KINDS {
        let (idx, _pool) = fresh(kind, 64, PmConfig::real());
        for k in (0..1_000u64).step_by(2) {
            idx.insert(k, k + 1);
        }
        let mut out = Vec::new();
        // Start below, at, and above existing keys; counts at edges.
        assert_eq!(idx.scan(0, 1, &mut out), 1, "{kind}");
        assert_eq!(out, vec![(0, 1)], "{kind}");
        assert_eq!(idx.scan(1, 2, &mut out), 2, "{kind}");
        assert_eq!(out, vec![(2, 3), (4, 5)], "{kind}");
        assert_eq!(idx.scan(998, 10, &mut out), 1, "{kind}");
        assert_eq!(idx.scan(999, 10, &mut out), 0, "{kind}");
        assert_eq!(idx.scan(0, 0, &mut out), 0, "{kind}");
        assert_eq!(idx.scan(0, 100_000, &mut out), 500, "{kind}");
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0), "{kind}");
    }
}
