//! Crash-recovery matrix: for every PM index, run a workload, pull the
//! plug, recover, and verify that exactly the acknowledged state
//! survived — with and without eviction chaos.

mod common;

use std::collections::BTreeMap;
use std::sync::Arc;

use common::{create_small, recover_small, PM_KINDS};
use pm_index_bench::pmalloc::{AllocMode, PmAllocator};
use pm_index_bench::pmem::{PmConfig, PmPool};

/// Deterministic mixed workload recording acknowledged effects.
fn apply_workload(
    idx: &dyn pm_index_bench::index_api::RangeIndex,
    seed: u64,
    n_ops: u64,
    key_range: u64,
) -> BTreeMap<u64, u64> {
    let mut model = BTreeMap::new();
    let mut x = seed | 1;
    for i in 0..n_ops {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let k = (x >> 16) % key_range;
        match x % 10 {
            0..=5 => {
                if idx.insert(k, i) {
                    model.insert(k, i);
                }
            }
            6..=7 => {
                if idx.update(k, i + 1) {
                    model.insert(k, i + 1);
                }
            }
            _ => {
                if idx.remove(k) {
                    model.remove(&k);
                }
            }
        }
    }
    model
}

fn crash_roundtrip(kind: &str, chaos: Option<u64>, seed: u64) {
    let cfg = match chaos {
        Some(s) => PmConfig::real().with_eviction_chaos(s),
        None => PmConfig::real(),
    };
    let pool = Arc::new(PmPool::new(64 << 20, cfg));
    let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
    let idx = create_small(kind, alloc);
    let model = apply_workload(&*idx, seed, 5_000, 2_048);
    drop(idx);
    pool.crash();
    let alloc = PmAllocator::recover(pool, AllocMode::General);
    let idx = recover_small(kind, alloc);
    for (&k, &v) in &model {
        assert_eq!(idx.lookup(k), Some(v), "{kind} seed={seed}: key {k}");
    }
    let mut out = Vec::new();
    idx.scan(0, usize::MAX >> 1, &mut out);
    assert_eq!(
        out.len(),
        model.len(),
        "{kind} seed={seed}: record count after recovery"
    );
    assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
    // And the recovered tree must still work.
    assert!(idx.insert(u64::MAX - seed, 7));
    assert_eq!(idx.lookup(u64::MAX - seed), Some(7));
}

#[test]
fn acknowledged_state_survives_crash() {
    for kind in PM_KINDS {
        for seed in [11u64, 22, 33] {
            crash_roundtrip(kind, None, seed);
        }
    }
}

#[test]
fn acknowledged_state_survives_crash_with_eviction_chaos() {
    for kind in PM_KINDS {
        for seed in [44u64, 55] {
            crash_roundtrip(kind, Some(seed), seed);
        }
    }
}

#[test]
fn double_crash_recovery_is_stable() {
    // Crash, recover, work some more, crash again, recover again.
    for kind in PM_KINDS {
        let pool = Arc::new(PmPool::new(64 << 20, PmConfig::real()));
        let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
        let idx = create_small(kind, alloc);
        let mut model = apply_workload(&*idx, 7, 3_000, 1_024);
        drop(idx);
        pool.crash();

        let alloc = PmAllocator::recover(pool.clone(), AllocMode::General);
        let idx = recover_small(kind, alloc);
        let more = apply_workload(&*idx, 8, 3_000, 1_024);
        // Second workload overlays the first (insert acks depend on the
        // recovered state, so replay both models in order).
        for (k, v) in more {
            model.insert(k, v);
        }
        // Note: removes in the second phase removed from `model` only if
        // tracked; rebuild the truth from the index instead.
        let mut truth = Vec::new();
        idx.scan(0, usize::MAX >> 1, &mut truth);
        drop(idx);
        pool.crash();

        let alloc = PmAllocator::recover(pool, AllocMode::General);
        let idx = recover_small(kind, alloc);
        let mut after = Vec::new();
        idx.scan(0, usize::MAX >> 1, &mut after);
        assert_eq!(truth, after, "{kind}: second crash lost state");
    }
}

#[test]
fn recovery_of_empty_index() {
    for kind in PM_KINDS {
        let pool = Arc::new(PmPool::new(64 << 20, PmConfig::real()));
        let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
        let idx = create_small(kind, alloc);
        drop(idx);
        pool.crash();
        let alloc = PmAllocator::recover(pool, AllocMode::General);
        let idx = recover_small(kind, alloc);
        assert_eq!(idx.lookup(1), None, "{kind}");
        let mut out = Vec::new();
        assert_eq!(idx.scan(0, 10, &mut out), 0, "{kind}");
        assert!(idx.insert(5, 50), "{kind}");
        assert_eq!(idx.lookup(5), Some(50), "{kind}");
    }
}

#[test]
fn recovery_after_total_deletion() {
    for kind in PM_KINDS {
        let pool = Arc::new(PmPool::new(64 << 20, PmConfig::real()));
        let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
        let idx = create_small(kind, alloc);
        for k in 0..500u64 {
            idx.insert(k, k);
        }
        for k in 0..500u64 {
            assert!(idx.remove(k), "{kind}");
        }
        drop(idx);
        pool.crash();
        let alloc = PmAllocator::recover(pool, AllocMode::General);
        let idx = recover_small(kind, alloc);
        let mut out = Vec::new();
        assert_eq!(idx.scan(0, 1_000, &mut out), 0, "{kind}");
        // Reusable after total deletion + crash.
        for k in 0..500u64 {
            assert!(idx.insert(k, k + 1), "{kind}");
        }
        assert_eq!(idx.lookup(250), Some(251), "{kind}");
    }
}
