//! Crash-point exploration matrix plus recovery edge cases.
//!
//! The exploration tests drive `crates/crashpoint`: a deterministic
//! mixed workload is crashed at persistence-event boundaries, recovered
//! and verified against the oracle invariant ("exactly acknowledged
//! operations survive; the in-flight operation is atomic"). These runs
//! are strided to stay fast; the full boundary-by-boundary matrix runs
//! via `cargo run --release --example pm_inspector -- crashpoints`.

mod common;

use std::sync::Arc;

use common::{create_small, recover_small, PM_KINDS};
use pm_index_bench::crashpoint::{explore, ExploreOptions, ResidualConfig};
use pm_index_bench::pmalloc::{AllocMode, PmAllocator};
use pm_index_bench::pmem::{PmConfig, PmPool};

fn sweep(kind: &str, chaos: bool) {
    let opts = ExploreOptions {
        kind: kind.to_string(),
        ops: 100,
        key_range: 64,
        seed: 3,
        pool_mib: 16,
        chaos_seed: chaos.then_some(0xC4A05),
        stride: 5,
        max_boundaries: None,
        ..ExploreOptions::default()
    };
    let summary = explore(&opts);
    assert!(summary.total_events > 0, "{kind}: empty boundary space");
    assert!(
        summary.crashes_fired > 0,
        "{kind} chaos={chaos}: injection never fired"
    );
    assert!(
        summary.is_green(),
        "{kind} chaos={chaos}: {} oracle violations, first: {:?}",
        summary.failures.len(),
        summary.failures.first()
    );
}

#[test]
fn crash_at_every_strided_boundary_recovers() {
    for kind in PM_KINDS {
        sweep(kind, false);
    }
}

#[test]
fn sampled_residual_images_recover_at_every_strided_boundary() {
    // Torn-write model: at each boundary, each dirty-but-unflushed line
    // independently persists with p = 1/2, several seeded samples per
    // boundary. Every sampled image must satisfy the same oracle.
    for kind in PM_KINDS {
        let opts = ExploreOptions {
            kind: kind.to_string(),
            ops: 60,
            key_range: 48,
            seed: 13,
            pool_mib: 16,
            stride: 7,
            residual: ResidualConfig::Sampled {
                samples: 3,
                p_per_256: 128,
            },
            ..ExploreOptions::default()
        };
        let summary = explore(&opts);
        assert!(summary.crashes_fired > 0, "{kind}: injection never fired");
        assert!(
            summary.samples_run > summary.boundaries_tested,
            "{kind}: sampling did not multiply the verification count"
        );
        assert!(
            summary.is_green(),
            "{kind}: {} torn-write violations, first: {:?}",
            summary.failures.len(),
            summary.failures.first()
        );
    }
}

#[test]
fn exhaustive_subset_enumeration_covers_the_write_frontier() {
    // Exhaustive model: residual candidates are recency-ordered, and
    // every boundary gets all 2^j subsets of its j most-recently-written
    // dirty lines (the in-flight operation's torn window), plus seeded
    // samples over the older long-unflushed lines. Every enumerated
    // image must satisfy the oracle.
    for kind in PM_KINDS {
        let opts = ExploreOptions {
            kind: kind.to_string(),
            ops: 40,
            key_range: 32,
            seed: 17,
            pool_mib: 16,
            stride: 11,
            max_boundaries: Some(16),
            residual: ResidualConfig::Exhaustive {
                max_lines: 4,
                fallback_samples: 2,
            },
            ..ExploreOptions::default()
        };
        let summary = explore(&opts);
        assert!(
            summary.exhaustive_boundaries > 0,
            "{kind}: frontier enumeration never engaged \
             (max candidates {})",
            summary.max_residual_candidates
        );
        assert!(
            summary.samples_run >= summary.exhaustive_boundaries * 16,
            "{kind}: expected >= 2^4 subset images per exhausted boundary, \
             got {} samples over {} boundaries",
            summary.samples_run,
            summary.exhaustive_boundaries
        );
        assert!(
            summary.is_green(),
            "{kind}: {} violations, first: {:?}",
            summary.failures.len(),
            summary.failures.first()
        );
    }
}

#[test]
fn poisoned_lost_lines_are_reported_never_garbage() {
    // Media-error model: one lost line per sampled image comes back
    // unreadable. Recovery must either avoid it or report a MediaError —
    // returning garbage or a raw PoisonedRead panic is a failure.
    for kind in PM_KINDS {
        let opts = ExploreOptions {
            kind: kind.to_string(),
            ops: 50,
            key_range: 32,
            seed: 29,
            pool_mib: 16,
            stride: 9,
            residual: ResidualConfig::Sampled {
                samples: 2,
                p_per_256: 64,
            },
            poison: true,
            ..ExploreOptions::default()
        };
        let summary = explore(&opts);
        assert!(
            summary.poison_injected > 0,
            "{kind}: poison was never injected"
        );
        assert!(
            summary.is_green(),
            "{kind}: {} violations under media errors, first: {:?}",
            summary.failures.len(),
            summary.failures.first()
        );
    }
}

#[test]
fn crash_at_every_strided_boundary_recovers_under_eviction_chaos() {
    for kind in PM_KINDS {
        sweep(kind, true);
    }
}

#[test]
fn durability_audit_never_sees_huge_unflushed_state() {
    // The dirty-line count at any crash point bounds how much
    // acknowledged-but-unflushed state *could* exist. It must stay small
    // (a handful of lines under mutation), never O(dataset).
    for kind in PM_KINDS {
        let opts = ExploreOptions {
            kind: kind.to_string(),
            ops: 80,
            key_range: 48,
            seed: 5,
            pool_mib: 16,
            chaos_seed: None,
            stride: 9,
            max_boundaries: None,
            ..ExploreOptions::default()
        };
        let summary = explore(&opts);
        assert!(summary.is_green(), "{kind}: {:?}", summary.failures.first());
        assert!(
            summary.max_dirty_lines < 4_096,
            "{kind}: {} dirty lines at a crash point — unflushed state is unbounded",
            summary.max_dirty_lines
        );
    }
}

#[test]
fn recovering_a_zero_op_pool_twice_is_idempotent() {
    // Format, crash immediately (zero operations), recover, crash again
    // without doing anything, recover again: still empty, still usable.
    for kind in PM_KINDS {
        let pool = Arc::new(PmPool::new(16 << 20, PmConfig::real()));
        let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
        let idx = create_small(kind, alloc);
        drop(idx);
        pool.crash();

        let alloc = PmAllocator::recover(pool.clone(), AllocMode::General);
        let idx = recover_small(kind, alloc);
        let mut out = Vec::new();
        assert_eq!(idx.scan(0, 100, &mut out), 0, "{kind}: first recovery");
        drop(idx);
        pool.crash();

        let alloc = PmAllocator::recover(pool, AllocMode::General);
        let idx = recover_small(kind, alloc);
        assert_eq!(idx.scan(0, 100, &mut out), 0, "{kind}: second recovery");
        assert_eq!(idx.lookup(9), None, "{kind}");
        assert!(idx.insert(9, 90), "{kind}: unusable after double recovery");
        assert_eq!(idx.lookup(9), Some(90), "{kind}");
    }
}

#[test]
fn recovering_twice_with_no_intervening_ops_is_idempotent() {
    // Recovery must not mutate acknowledged state: recover, snapshot,
    // crash without writing, recover again — identical contents.
    for kind in PM_KINDS {
        let pool = Arc::new(PmPool::new(32 << 20, PmConfig::real()));
        let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
        let idx = create_small(kind, alloc);
        for k in 0..800u64 {
            idx.insert(k * 3, k);
        }
        for k in 0..200u64 {
            idx.remove(k * 6);
        }
        drop(idx);
        pool.crash();

        let alloc = PmAllocator::recover(pool.clone(), AllocMode::General);
        let idx = recover_small(kind, alloc);
        let mut first = Vec::new();
        idx.scan(0, usize::MAX >> 1, &mut first);
        drop(idx);
        pool.crash();

        let alloc = PmAllocator::recover(pool, AllocMode::General);
        let idx = recover_small(kind, alloc);
        let mut second = Vec::new();
        idx.scan(0, usize::MAX >> 1, &mut second);
        assert_eq!(
            first, second,
            "{kind}: recovery is not idempotent — a second recover changed state"
        );
        assert!(idx.insert(u64::MAX - 1, 1), "{kind}: unusable");
    }
}
