//! The learned index's own integration suite: the trained-model
//! ε-bound under arbitrary key sets, recovery idempotence, and
//! crash-at-every-boundary through a model merge (the one operation
//! that rewrites everything the index owns).

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use pm_index_bench::index_api::RangeIndex;
use pm_index_bench::learned::{pla, LearnedConfig, LearnedIndex};
use pm_index_bench::pmalloc::{AllocMode, PmAllocator};
use pm_index_bench::pmem::{CrashPointHit, PmConfig, PmPool};
use proptest::prelude::*;

fn small_cfg() -> LearnedConfig {
    LearnedConfig {
        epsilon: 4,
        delta_min_cap: 24,
        chunk_entries: 64,
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    /// The segment builder's contract: for ANY sorted deduplicated key
    /// set and any ε, every key's predicted rank is within ε of its
    /// true rank, segments tile the key space in order, and every key
    /// is found through the model's own search path.
    #[test]
    fn trained_segments_respect_epsilon_for_arbitrary_keys(
        keys in proptest::collection::vec(any::<u64>(), 1..500),
        eps in 1u64..64,
    ) {
        let mut keys = keys;
        keys.sort_unstable();
        keys.dedup();
        let segs = pla::build_segments(&keys, eps);
        prop_assert!(!segs.is_empty());
        prop_assert_eq!(segs[0].first_key, keys[0]);
        prop_assert!(segs.windows(2).all(|w| w[0].first_key < w[1].first_key));
        for (rank, &k) in keys.iter().enumerate() {
            let seg = &segs[pla::segment_for(&segs, k)];
            let err = seg.predict(k).abs_diff(rank as u64);
            prop_assert!(err <= eps, "ε-bound broken: key {k} rank {rank} err {err} > {eps}");
            prop_assert_eq!(pla::find(&segs, &keys, k, eps), Some(rank));
        }
        // Absent keys: lower_bound must agree with plain binary search.
        for probe in [0, u64::MAX / 3, u64::MAX] {
            prop_assert_eq!(
                pla::lower_bound(&segs, &keys, probe, eps),
                keys.partition_point(|&k| k < probe)
            );
        }
    }
}

/// Recovery is idempotent: recovering the same crashed image twice in a
/// row (power loss during the first restart's DRAM rebuild) yields the
/// same observable state, even when the first recovery completes an
/// interrupted merge and writes PM.
#[test]
fn double_recovery_is_idempotent() {
    let cfg = small_cfg();
    let pool = Arc::new(PmPool::new(32 << 20, PmConfig::real()));
    let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
    let t = LearnedIndex::create(alloc, cfg);
    for k in 0..1_000u64 {
        t.insert(k * 7, k);
    }
    for k in (0..1_000u64).step_by(3) {
        t.remove(k * 7);
    }
    drop(t);
    pool.crash();

    let alloc = PmAllocator::recover(pool.clone(), AllocMode::General);
    let t1 = LearnedIndex::recover(alloc, cfg);
    let mut out1 = Vec::new();
    t1.scan(0, 2_000, &mut out1);
    drop(t1);

    // The first restart is itself cut down before serving anything.
    pool.crash();
    let alloc = PmAllocator::recover(pool.clone(), AllocMode::General);
    let t2 = LearnedIndex::recover(alloc, cfg);
    let mut out2 = Vec::new();
    t2.scan(0, 2_000, &mut out2);
    assert_eq!(out1, out2, "second recovery saw different state");
    for k in 0..1_000u64 {
        let want = if k % 3 == 0 { None } else { Some(k) };
        assert_eq!(t2.lookup(k * 7), want, "key {}", k * 7);
    }
    // And the twice-recovered index is fully writable.
    assert!(t2.insert(u64::MAX - 9, 1));
    assert_eq!(t2.lookup(u64::MAX - 9), Some(1));
}

/// Fill the delta log to one entry short of a merge, then crash at
/// every persistence-event boundary of the insert that trips the
/// merge. Whatever boundary the power fails at, recovery must land on
/// a complete model: every acked key present with its exact value, the
/// in-flight key atomically present-or-absent, and the index usable.
#[test]
fn crash_at_every_boundary_through_a_merge_recovers() {
    let cfg = small_cfg();
    let mut boundary = 1u64;
    let mut completed = false;
    let mut crashes = 0u64;
    while !completed {
        let pool = Arc::new(PmPool::new(32 << 20, PmConfig::real()));
        let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
        let t = LearnedIndex::create(alloc, cfg);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        // Log capacity rounds up to one whole 64-entry chunk. Appends
        // claim slots while capacity remains, so 64 acked inserts fill
        // the log exactly; the 65th finds it full and fires the merge
        // before re-appending.
        for k in 0..64u64 {
            assert!(t.insert(k * 11, k + 1));
            model.insert(k * 11, k + 1);
        }
        pool.arm_crash_after(boundary);
        let r = catch_unwind(AssertUnwindSafe(|| t.insert(999, 7)));
        pool.disarm_crash();
        match r {
            Ok(acked) => {
                // The whole merge fit under this boundary budget: the
                // sweep has walked every boundary of the merge path.
                assert!(acked);
                completed = true;
            }
            Err(payload) => {
                if payload.downcast_ref::<CrashPointHit>().is_none() {
                    std::panic::resume_unwind(payload);
                }
                crashes += 1;
            }
        }
        drop(t);
        pool.crash();
        let alloc = PmAllocator::recover(pool, AllocMode::General);
        let t = LearnedIndex::try_recover(alloc, cfg)
            .unwrap_or_else(|e| panic!("boundary {boundary}: recovery failed: {e}"));
        for (&k, &v) in &model {
            assert_eq!(
                t.lookup(k),
                Some(v),
                "boundary {boundary}: acked key {k} lost"
            );
        }
        // The in-flight insert is atomic: absent, or present and exact.
        let inflight = t.lookup(999);
        assert!(
            inflight.is_none() || inflight == Some(7),
            "boundary {boundary}: torn in-flight value {inflight:?}"
        );
        // Post-recovery the index keeps absorbing writes across the
        // next merge too.
        for k in 0..30u64 {
            assert!(t.insert(100_000 + k, k), "boundary {boundary}");
        }
        assert_eq!(t.lookup(100_015), Some(15), "boundary {boundary}");
        boundary += 1;
    }
    assert!(
        crashes >= 10,
        "merge exposed suspiciously few persistence boundaries: {crashes}"
    );
}
