//! Crash-mid-migration integration tests: power cuts at persistence
//! boundaries while an online shard-range migration (copy → fenced
//! publish → GC) is in flight must never lose an acked write or leave
//! the routing table half-copied, and recovery must be idempotent.
//!
//! The heavy lifting lives in `crashpoint::migration::explore_migration`
//! (which also checks double recovery per boundary); these tests pin the
//! sweep green across index kinds and both sides of the publish point.

use pm_index_bench::crashpoint::migration::{explore_migration, MigrationExploreOptions};

fn strided_opts(kind: &str, stride: u64) -> MigrationExploreOptions {
    MigrationExploreOptions {
        kind: kind.into(),
        ops: 160,
        key_range: 64,
        stride,
        ..MigrationExploreOptions::default()
    }
}

/// Crash the *base* shards mid-migration: acked writes racing the copy
/// loop must survive, and a cut before publish must drop the
/// destination cleanly.
#[test]
fn base_pool_cuts_recover_for_fptree() {
    let opts = MigrationExploreOptions {
        arm_pools: vec![0, 1],
        ..strided_opts("fptree", 97)
    };
    let s = explore_migration(&opts);
    assert!(s.is_green(), "{:?}", &s.failures[..s.failures.len().min(3)]);
    assert!(s.crashes_fired > 0, "no boundary tripped");
}

/// Crash the *destination* pool: the migration must either vanish
/// entirely (cut before the publish word) or come back claimed — never
/// a half-copied route.
#[test]
fn destination_pool_cuts_straddle_the_publish_point() {
    let opts = MigrationExploreOptions {
        arm_pools: vec![2], // dst pool sits after the base shards
        ..strided_opts("wbtree", 61)
    };
    let s = explore_migration(&opts);
    assert!(s.is_green(), "{:?}", &s.failures[..s.failures.len().min(3)]);
    assert!(s.crashes_fired > 0, "no boundary tripped");
    assert!(
        s.preparing_recoveries > 0 && s.claimed_recoveries > 0,
        "sweep did not straddle the publish point: {} preparing, {} claimed",
        s.preparing_recoveries,
        s.claimed_recoveries
    );
}

/// The learned index's delta-log + segment model through the same
/// sweep — the striped delta must re-route cleanly after a mid-copy cut.
#[test]
fn learned_index_survives_mid_migration_cuts() {
    let s = explore_migration(&strided_opts("learned", 151));
    assert!(s.is_green(), "{:?}", &s.failures[..s.failures.len().min(3)]);
    assert!(s.crashes_fired > 0, "no boundary tripped");
}
