//! Multi-threaded crash consistency: crashes armed while 2–8 threads
//! hammer one shared index. All threads unwind, volatile state is
//! discarded, and recovery of every sampled residual image must satisfy
//! the relaxed concurrent oracle: acknowledged operations survive, each
//! thread's single in-flight operation is atomically present-or-absent,
//! and no torn value is ever returned.

use pm_index_bench::crashpoint::mt::{mt_crash_run, MtOptions};
use pm_index_bench::crashpoint::ResidualConfig;

#[test]
fn four_threads_crash_consistent_on_every_pm_index() {
    for kind in ["fptree", "nvtree", "wbtree", "bztree", "learned"] {
        let opts = MtOptions {
            kind: kind.to_string(),
            threads: 4,
            ops_per_thread: 150,
            boundaries: 5,
            seed: 42,
            residual: ResidualConfig::Sampled {
                samples: 2,
                p_per_256: 128,
            },
            ..MtOptions::default()
        };
        let summary = mt_crash_run(&opts);
        assert!(
            summary.crashes_fired > 0,
            "{kind}: no concurrent crash ever fired"
        );
        assert!(
            summary.threads_cut > 0,
            "{kind}: the crash never cut down a sibling thread"
        );
        assert!(
            summary.samples_run >= summary.boundaries_tested,
            "{kind}: residual sampling did not run"
        );
        assert!(
            summary.is_green(),
            "{kind}: {} concurrent-crash violations (seed {}), first: {:?}",
            summary.failures.len(),
            opts.seed,
            summary.failures.first()
        );
    }
}

#[test]
fn eight_threads_with_poison_stay_green() {
    // Top of the supported thread range, with media errors layered on:
    // a lost line per sampled image comes back poisoned. Recovery must
    // report it or avoid it — never return garbage.
    let opts = MtOptions {
        kind: "wbtree".to_string(),
        threads: 8,
        ops_per_thread: 80,
        boundaries: 4,
        seed: 7,
        poison: true,
        ..MtOptions::default()
    };
    let summary = mt_crash_run(&opts);
    assert!(summary.crashes_fired > 0, "no concurrent crash fired");
    assert!(
        summary.is_green(),
        "{} violations under 8 threads + poison (seed 7), first: {:?}",
        summary.failures.len(),
        summary.failures.first()
    );
}
