//! Crash-through-the-server durability: arm crash points in a shard's
//! pool while a remote client drives writes over real TCP, and verify
//! after every cut that the recovered index contains **every acked
//! write** and at most a clean prefix of the unacked pipeline (with one
//! torn in-flight op allowed) — the group-durability contract of the
//! serving layer, end to end.
//!
//! The exhaustive stride-1 sweep lives in `pm_inspector netcrash`; the
//! tier-1 tests here stride through the boundary space so all five PM
//! index kinds stay covered in minutes.

use pm_index_bench::net::{explore_net, NetExploreOptions};

fn strided(kind: &str, stride: u64, armed_shard: usize) -> NetExploreOptions {
    NetExploreOptions {
        kind: kind.to_string(),
        stride,
        armed_shard,
        ops: 150,
        key_range: 48,
        shards: 2,
        ..NetExploreOptions::default()
    }
}

fn run_green(opts: &NetExploreOptions) {
    let summary = explore_net(opts).expect("server io");
    assert!(
        summary.is_green(),
        "{}: {} durable-ack violations, first: boundary {} — {}",
        opts.kind,
        summary.failures.len(),
        summary.failures[0].boundary,
        summary.failures[0].detail
    );
    assert!(
        summary.boundaries_tested > 0,
        "{}: no boundaries tested (probe saw {} events)",
        opts.kind,
        summary.probe_events
    );
    assert!(
        summary.crashes_fired > 0,
        "{}: sweep never tripped a crash point ({} boundaries, {} events)",
        opts.kind,
        summary.boundaries_tested,
        summary.probe_events
    );
    eprintln!(
        "{}: {} boundaries, {} fired, {} completed, {} acks, deepest unacked suffix {}",
        opts.kind,
        summary.boundaries_tested,
        summary.crashes_fired,
        summary.completed_runs,
        summary.acked_total,
        summary.max_unacked
    );
}

#[test]
fn strided_net_sweep_fptree() {
    run_green(&strided("fptree", 173, 0));
}

#[test]
fn strided_net_sweep_nvtree() {
    run_green(&strided("nvtree", 211, 0));
}

#[test]
fn strided_net_sweep_wbtree() {
    run_green(&strided("wbtree", 193, 1));
}

#[test]
fn strided_net_sweep_bztree() {
    run_green(&strided("bztree", 229, 1));
}

#[test]
fn strided_net_sweep_learned() {
    // The default-config learned index logs every write; 150 ops on a
    // 48-key range stay inside one delta-log generation, so the sweep
    // crosses append/commit boundaries on both shards' logs.
    run_green(&strided("learned", 181, 0));
}

/// A deeper client pipeline and bigger server batches shift more ops
/// into the unacked window at the cut; the prefix oracle must still
/// reconcile every recovered image.
#[test]
fn deep_pipeline_sweep_wbtree() {
    let mut opts = strided("wbtree", 307, 0);
    opts.batch_max = 32;
    opts.window = 64;
    run_green(&opts);
}
