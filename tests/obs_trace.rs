//! End-to-end observability tests: the `obs` tracing layer driven
//! through the real stack (PiBench harness, index sites, crash-point
//! explorer).

mod common;

use std::sync::Mutex;

use common::fresh;
use pm_index_bench::crashpoint::{self, ExploreOptions};
use pm_index_bench::obs;
use pm_index_bench::pibench::{
    prefill, run, trace, BenchConfig, Distribution, KeySpace, OpKind, OpMix,
};
use pm_index_bench::pmem::PmConfig;

/// `obs` is process-global state (one enabled flag, one site interner,
/// shared rings); tests that flip it must not interleave.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn insert_cfg(records: u64, ops: u64) -> BenchConfig {
    BenchConfig {
        threads: 2,
        records,
        ops_per_thread: Some(ops / 2),
        duration: None,
        mix: OpMix::pure(OpKind::Insert),
        distribution: Distribution::Uniform,
        scan_len: 25,
        latency_sample_shift: 2,
        seed: 7,
        negative_lookups: false,
    }
}

#[test]
fn insert_media_writes_are_fully_attributed() {
    let _g = lock();
    let (idx, pool) = fresh("fptree", 64, PmConfig::real());
    let pool = pool.unwrap();
    let ks = KeySpace::new(5_000);
    prefill(&*idx, &ks, 2);

    obs::reset();
    obs::set_enabled(true);
    // `run` resets the pool counters at the start of the measured
    // phase, so `r.pm` is the device-truth media delta of the run.
    let r = run(
        &*idx,
        &ks,
        std::slice::from_ref(&pool),
        &insert_cfg(5_000, 5_000),
    );
    obs::set_enabled(false);
    let delta = &r.pm;
    assert!(r.total_ops() > 0);

    // Every media write byte the device saw must land in the site
    // table, and >= 95% must be attributed to *named* sites (not the
    // "other" catch-all) — the acceptance bar for the annotations.
    let sites = obs::site_table();
    let attributed: u64 = sites.iter().map(|s| s.media_write_bytes).sum();
    assert_eq!(
        attributed, delta.media_write_bytes,
        "site table must account for all media write bytes"
    );
    let named: u64 = sites
        .iter()
        .filter(|s| s.name != obs::SITE_OTHER)
        .map(|s| s.media_write_bytes)
        .sum();
    assert!(
        named as f64 >= 0.95 * delta.media_write_bytes as f64,
        "named sites cover {named} of {} media write bytes",
        delta.media_write_bytes
    );
    assert!(
        sites
            .iter()
            .any(|s| s.name == "fptree_insert" && s.media_write_bytes > 0),
        "insert traffic must surface under the fptree_insert site"
    );

    // The flight recorder holds events and they export as a loadable
    // Chrome-trace document with both op spans and PM instants.
    let events = obs::flight_events(usize::MAX);
    assert!(!events.is_empty());
    let json = trace::chrome_trace_json(&events, &obs::site_names());
    assert!(json.starts_with(r#"{"traceEvents":["#));
    assert!(json.contains(r#""ph":"X""#), "op spans present");
    assert!(json.contains(r#""ph":"i""#), "pm instants present");
}

#[test]
fn injected_crashpoint_run_dumps_flight_tail() {
    let _g = lock();
    obs::reset();
    obs::set_enabled(true);
    let summary = crashpoint::explore(&ExploreOptions {
        kind: "wbtree".to_string(),
        ops: 40,
        key_range: 24,
        pool_mib: 16,
        max_boundaries: Some(3),
        ..ExploreOptions::default()
    });
    obs::set_enabled(false);
    assert!(summary.crashes_fired > 0, "injection never fired");
    assert!(summary.is_green(), "{:?}", summary.failures.first());
    let tail = summary
        .first_crash_flight_tail
        .expect("tracing was enabled and a crash fired");
    assert!(!tail.trim().is_empty(), "flight tail must be non-empty");
    // The tail pins down concrete PM traffic (offsets), not just labels.
    assert!(tail.contains("off=0x"), "{tail}");
}

#[test]
fn disabled_tracing_records_nothing() {
    let _g = lock();
    obs::reset();
    assert!(!obs::enabled());
    let (idx, pool) = fresh("fptree", 64, PmConfig::real());
    let ks = KeySpace::new(2_000);
    prefill(&*idx, &ks, 2);
    run(&*idx, &ks, pool.as_slice(), &insert_cfg(2_000, 2_000));
    assert!(obs::flight_events(usize::MAX).is_empty());
    assert_eq!(obs::total_ops(), 0);
    assert!(obs::site_table().iter().all(|s| s.events == 0));
}
