//! End-to-end harness tests: PiBench driving the real indexes.

mod common;

use common::{fresh, ALL_KINDS, PM_KINDS};
use pm_index_bench::pibench::{prefill, run, BenchConfig, Distribution, KeySpace, OpKind, OpMix};
use pm_index_bench::pmem::PmConfig;

fn cfg(threads: usize, records: u64, ops: u64, mix: OpMix) -> BenchConfig {
    BenchConfig {
        threads,
        records,
        ops_per_thread: Some(ops / threads as u64),
        duration: None,
        mix,
        distribution: Distribution::Uniform,
        scan_len: 25,
        latency_sample_shift: 2,
        seed: 99,
        negative_lookups: false,
    }
}

#[test]
fn lookups_after_prefill_never_miss() {
    for kind in ALL_KINDS {
        let (idx, pool) = fresh(kind, 64, PmConfig::real());
        let ks = KeySpace::new(20_000);
        prefill(&*idx, &ks, 4);
        let r = run(
            &*idx,
            &ks,
            pool.as_slice(),
            &cfg(4, 20_000, 40_000, OpMix::pure(OpKind::Lookup)),
        );
        assert_eq!(r.misses, 0, "{kind}: prefilled lookups must all hit");
        assert_eq!(r.total_ops(), 40_000, "{kind}");
        assert!(r.mops() > 0.0, "{kind}");
    }
}

#[test]
fn inserts_after_prefill_never_collide() {
    for kind in ALL_KINDS {
        let (idx, pool) = fresh(kind, 128, PmConfig::real());
        let ks = KeySpace::new(5_000);
        prefill(&*idx, &ks, 4);
        let r = run(
            &*idx,
            &ks,
            pool.as_slice(),
            &cfg(4, 5_000, 20_000, OpMix::pure(OpKind::Insert)),
        );
        assert_eq!(r.misses, 0, "{kind}: insert keys must be fresh");
    }
}

#[test]
fn pm_counters_reflect_persistence() {
    for kind in PM_KINDS {
        let (idx, pool) = fresh(kind, 64, PmConfig::real());
        let pool = pool.unwrap();
        let ks = KeySpace::new(5_000);
        prefill(&*idx, &ks, 2);
        // Inserts must write and flush PM; lookups must not.
        let r_ins = run(
            &*idx,
            &ks,
            std::slice::from_ref(&pool),
            &cfg(2, 5_000, 5_000, OpMix::pure(OpKind::Insert)),
        );
        assert!(
            r_ins.pm.media_write_bytes > 0,
            "{kind}: inserts write media"
        );
        assert!(r_ins.pm.clwb > 0, "{kind}: inserts flush");
        assert!(r_ins.pm.fence > 0, "{kind}: inserts fence");
        // Drain epoch-deferred frees left over from the insert phase
        // (NV-Tree/BzTree retire replaced nodes after a grace period;
        // those persistent frees would otherwise bleed into the
        // read-only measurement).
        for _ in 0..3 {
            run(
                &*idx,
                &ks,
                &[],
                &cfg(2, 5_000, 2_000, OpMix::pure(OpKind::Lookup)),
            );
        }
        let r_lku = run(
            &*idx,
            &ks,
            std::slice::from_ref(&pool),
            &cfg(2, 5_000, 5_000, OpMix::pure(OpKind::Lookup)),
        );
        assert_eq!(
            r_lku.pm.media_write_bytes, 0,
            "{kind}: lookups must not write media"
        );
        assert!(r_lku.pm.media_read_bytes > 0, "{kind}: lookups read media");
    }
}

#[test]
fn skewed_runs_complete_and_hit() {
    for kind in ALL_KINDS {
        let (idx, pool) = fresh(kind, 64, PmConfig::real());
        let ks = KeySpace::new(10_000);
        prefill(&*idx, &ks, 2);
        let mut c = cfg(2, 10_000, 10_000, OpMix::pure(OpKind::Lookup));
        c.distribution = Distribution::self_similar_80_20();
        let r = run(&*idx, &ks, pool.as_slice(), &c);
        assert_eq!(r.misses, 0, "{kind}");
    }
}

#[test]
fn latency_histograms_are_populated_per_kind() {
    let (idx, pool) = fresh("fptree", 64, PmConfig::real());
    let ks = KeySpace::new(5_000);
    prefill(&*idx, &ks, 2);
    let mix = OpMix {
        lookup: 40,
        insert: 30,
        update: 10,
        remove: 10,
        scan: 10,
    };
    let r = run(&*idx, &ks, pool.as_slice(), &cfg(2, 5_000, 20_000, mix));
    for k in [
        OpKind::Lookup,
        OpKind::Insert,
        OpKind::Update,
        OpKind::Remove,
        OpKind::Scan,
    ] {
        assert!(
            !r.latency[k as usize].is_empty(),
            "{} histogram empty",
            k.label()
        );
        assert!(r.latency[k as usize].percentile(99.0) > 0);
    }
}

#[test]
fn dram_mode_elides_all_media_writes() {
    let (idx, pool) = fresh("fptree", 64, PmConfig::dram());
    let pool = pool.unwrap();
    let ks = KeySpace::new(5_000);
    prefill(&*idx, &ks, 2);
    let r = run(
        &*idx,
        &ks,
        std::slice::from_ref(&pool),
        &cfg(2, 5_000, 5_000, OpMix::pure(OpKind::Insert)),
    );
    assert_eq!(
        r.pm.media_write_bytes, 0,
        "persistence-elided mode must not touch media"
    );
    assert!(r.pm.clwb > 0, "instructions still counted");
}
