//! Media-error recovery: a poisoned (unreadable) line on the recovery
//! path must be *detected and reported* via the fallible `try_recover`
//! entry points — never surfaced as garbage records, and never escaped
//! as a raw `PoisonedRead` panic.

mod common;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use common::{create_small, PM_KINDS};
use pm_index_bench::crashpoint::try_recover_stack;
use pm_index_bench::pmalloc::{AllocMode, PmAllocator};
use pm_index_bench::pmem::{PmConfig, PmPool};

/// A crashed pool holding a few hundred acknowledged records of `kind`.
fn crashed_pool(kind: &str) -> Arc<PmPool> {
    let pool = Arc::new(PmPool::new(16 << 20, PmConfig::real()));
    let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
    let idx = create_small(kind, alloc);
    for k in 0..300u64 {
        idx.insert(k, k + 1);
    }
    for k in 0..100u64 {
        idx.remove(k * 3);
    }
    drop(idx);
    pool.crash();
    pool
}

/// The root-area line each index's recovery probes first.
fn root_slot_line(kind: &str) -> u64 {
    match kind {
        "fptree" => 64,   // slots 8–13: head, split log, cfg
        "nvtree" => 128,  // slots 16–17: head, cfg
        "wbtree" => 192,  // slots 24–26: root, head, cfg
        "bztree" => 256,  // slots 32–34: PMwCAS area, root, cfg
        "learned" => 320, // slots 40–41: model descriptor, cfg
        other => panic!("not a PM index: {other}"),
    }
}

fn expect_reported(kind: &str, pool: Arc<PmPool>, what: &str) {
    match catch_unwind(AssertUnwindSafe(|| try_recover_stack(kind, pool))) {
        Ok(Err(e)) => {
            let msg = format!("{e}");
            assert!(
                msg.contains("poisoned line"),
                "{kind}: report should name the poisoned line, got {msg:?}"
            );
        }
        Ok(Ok(_)) => panic!("{kind}: recovery ignored the poisoned {what}"),
        Err(_) => panic!("{kind}: recovery panicked on a poisoned {what} instead of reporting it"),
    }
}

#[test]
fn poisoned_root_slots_are_reported_on_every_index() {
    for kind in PM_KINDS {
        let pool = crashed_pool(kind);
        pool.poison_line(root_slot_line(kind));
        expect_reported(kind, pool, "root slot line");
    }
}

#[test]
fn poisoned_allocator_header_is_reported_under_every_index() {
    for kind in PM_KINDS {
        let pool = crashed_pool(kind);
        pool.poison_line(4096); // the allocator superblock line
        expect_reported(kind, pool, "allocator header");
    }
}

#[test]
fn poisoned_head_leaf_is_reported_on_chain_indexes() {
    // fptree / nvtree / wbtree recover by walking a persistent leaf
    // chain from a head pointer; the head leaf itself is always read.
    for (kind, head_slot) in [("fptree", 8u64), ("nvtree", 16), ("wbtree", 25)] {
        let pool = crashed_pool(kind);
        let head = pool.read_u64(head_slot * 8);
        assert!(head != 0, "{kind}: unformatted head slot?");
        pool.poison_line(head & !63);
        expect_reported(kind, pool, "head leaf");
    }
}

#[test]
fn poison_outside_the_recovery_path_does_not_block_recovery() {
    // A media error in never-allocated space must not stop recovery:
    // nothing reads it, so the pool recovers and stays fully usable.
    for kind in PM_KINDS {
        let pool = crashed_pool(kind);
        pool.poison_line(8 << 20); // deep in unreachable free space
        let idx = try_recover_stack(kind, pool.clone())
            .unwrap_or_else(|e| panic!("{kind}: unreferenced poison blocked recovery: {e}"));
        assert_eq!(idx.lookup(1), Some(2), "{kind}");
        assert!(idx.insert(1_000_000, 7), "{kind}");
        assert_eq!(pool.poisoned_line_count(), 1, "{kind}: poison lost");
    }
}

#[test]
fn scrubbing_clears_poison_and_unblocks_reads() {
    let pool = crashed_pool("wbtree");
    let off = 8 << 20;
    pool.poison_line(off);
    assert!(pool.check_readable(off, 64).is_err());
    pool.scrub_poison(off, 64);
    assert_eq!(pool.poisoned_line_count(), 0);
    assert!(pool.check_readable(off, 64).is_ok());
    assert_eq!(pool.read_u64(off), 0, "scrub must zero-fill");
}
