//! Property-based tests: arbitrary operation sequences against the
//! oracle, and arbitrary crash points against a persistence model.

mod common;

use std::collections::BTreeMap;
use std::sync::Arc;

use common::{create_small, recover_small, ALL_KINDS, PM_KINDS};
use pm_index_bench::index_api::oracle::{apply_and_compare, Op, Oracle};
use pm_index_bench::pmalloc::{AllocMode, PmAllocator};
use pm_index_bench::pmem::{PmConfig, PmPool};
use proptest::prelude::*;

fn arb_op() -> impl Strategy<Value = Op> {
    // Narrow key range to force collisions and splits.
    let key = 0u64..400;
    prop_oneof![
        4 => (key.clone(), any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        2 => key.clone().prop_map(Op::Lookup),
        2 => (key.clone(), any::<u64>()).prop_map(|(k, v)| Op::Update(k, v)),
        1 => key.clone().prop_map(Op::Remove),
        1 => (key, 1usize..40).prop_map(|(k, n)| Op::Scan(k, n)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case runs 5 indexes × hundreds of ops
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_op_sequences_match_oracle(ops in proptest::collection::vec(arb_op(), 1..600)) {
        for kind in ALL_KINDS {
            let (idx, _pool) = common::fresh(kind, 64, PmConfig::real());
            let mut model = Oracle::new();
            for &op in &ops {
                apply_and_compare(&*idx, &mut model, op);
            }
        }
    }

    #[test]
    fn crash_at_random_point_preserves_acknowledged_ops(
        ops in proptest::collection::vec(arb_op(), 1..300),
        chaos_seed in any::<u64>(),
    ) {
        for kind in PM_KINDS {
            let pool = Arc::new(PmPool::new(
                64 << 20,
                PmConfig::real().with_eviction_chaos(chaos_seed),
            ));
            let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
            let idx = create_small(kind, alloc);
            let mut model: BTreeMap<u64, u64> = BTreeMap::new();
            for &op in &ops {
                match op {
                    Op::Insert(k, v) => {
                        if idx.insert(k, v) {
                            model.insert(k, v);
                        }
                    }
                    Op::Update(k, v) => {
                        if idx.update(k, v) {
                            model.insert(k, v);
                        }
                    }
                    Op::Remove(k) => {
                        if idx.remove(k) {
                            model.remove(&k);
                        }
                    }
                    Op::Lookup(k) => {
                        prop_assert_eq!(idx.lookup(k), model.get(&k).copied(), "{}", kind);
                    }
                    Op::Scan(k, n) => {
                        let mut out = Vec::new();
                        idx.scan(k, n, &mut out);
                        let want: Vec<(u64, u64)> =
                            model.range(k..).take(n).map(|(&k, &v)| (k, v)).collect();
                        prop_assert_eq!(out, want, "{}", kind);
                    }
                }
            }
            drop(idx);
            pool.crash();
            let alloc = PmAllocator::recover(pool, AllocMode::General);
            let idx = recover_small(kind, alloc);
            for (&k, &v) in &model {
                prop_assert_eq!(idx.lookup(k), Some(v), "{} lost {} after crash", kind, k);
            }
            let mut out = Vec::new();
            idx.scan(0, 10_000, &mut out);
            prop_assert_eq!(out.len(), model.len(), "{} ghost records", kind);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    #[test]
    fn allocator_blocks_never_overlap(sizes in proptest::collection::vec(1usize..4096, 1..60)) {
        let pool = Arc::new(PmPool::new(16 << 20, PmConfig::real()));
        let alloc = PmAllocator::format(pool, AllocMode::General);
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for &sz in &sizes {
            let off = alloc.alloc(sz).unwrap();
            let end = off + sz as u64;
            for &(a, b) in &spans {
                prop_assert!(end <= a || off >= b, "overlap: [{off},{end}) vs [{a},{b})");
            }
            spans.push((off, end));
        }
    }

    #[test]
    fn latency_histogram_percentiles_are_monotone(samples in proptest::collection::vec(1u64..10_000_000, 1..500)) {
        let mut h = pm_index_bench::pibench::LatencyHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let ps = [0.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0];
        let vals: Vec<u64> = ps.iter().map(|&p| h.percentile(p)).collect();
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1], "percentiles must be monotone: {vals:?}");
        }
        let max = *samples.iter().max().unwrap();
        prop_assert_eq!(h.percentile(100.0), max);
        prop_assert!(h.percentile(50.0) <= max);
    }
}
