//! Property tests for the torn-write residual-image model: for any
//! seed, a sampled post-crash image agrees with the full-flush image on
//! every clean line and is line-atomic on every dirty line — each dirty
//! line is either exactly its written contents or exactly the frozen
//! persisted contents, never a mix.

use pm_index_bench::pmem::{PmConfig, PmPool, ResidualPolicy};
use proptest::prelude::*;

const BASE: u64 = 4096;
const LINES: u64 = 32;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        .. ProptestConfig::default()
    })]

    #[test]
    fn sampled_residual_touches_only_dirty_lines(
        writes in proptest::collection::vec(
            ((0u64..LINES, 0u64..8), (any::<u64>(), 0u32..2)),
            1..80,
        ),
        seed in any::<u64>(),
    ) {
        let p = PmPool::new(1 << 16, PmConfig::real());
        for &((line, word), (value, flush)) in &writes {
            p.write_u64(BASE + line * 64 + word * 8, value);
            if flush == 1 {
                p.persist(BASE + line * 64, 64);
            }
        }
        // Reference images: full-flush (the CPU image, as if every
        // store had been persisted), frozen (the persisted image), and
        // the dirty-line candidates bridging them.
        let full: Vec<u64> = (0..LINES * 8).map(|w| p.read_u64(BASE + w * 8)).collect();
        let persisted = p.snapshot_persisted();
        let cands = p.residual_candidates();
        p.crash_with(ResidualPolicy::Sampled { seed, p_per_256: 128 });
        for line in 0..LINES {
            let off = BASE + line * 64;
            let post: Vec<u64> = (0..8u64).map(|w| p.read_u64(off + w * 8)).collect();
            match cands.iter().find(|c| c.off == off) {
                None => {
                    // Clean line: sampling must not touch it; it reads
                    // exactly as the full-flush image.
                    for w in 0..8usize {
                        prop_assert_eq!(
                            post[w],
                            full[line as usize * 8 + w],
                            "seed {}: clean line {:#x} word {} changed",
                            seed, off, w
                        );
                    }
                }
                Some(c) => {
                    // Dirty line: survives or vanishes atomically.
                    let frozen: Vec<u64> =
                        (0..8usize).map(|w| persisted[(off / 8) as usize + w]).collect();
                    let survived = post == c.words.to_vec();
                    let dropped = post == frozen;
                    prop_assert!(
                        survived || dropped,
                        "seed {}: dirty line {:#x} is torn within the line: {:?}",
                        seed, off, post
                    );
                }
            }
        }
    }

    #[test]
    fn subset_masks_keep_exactly_the_selected_recency_ranks(
        dirty in proptest::collection::vec((0u64..LINES, any::<u64>()), 1..20),
        mask in any::<u64>(),
    ) {
        // For any mask, candidate i (i-th most recently written line)
        // survives iff bit i is set — the enumeration the exhaustive
        // crash model walks.
        let p = PmPool::new(1 << 16, PmConfig::real());
        for &(line, value) in &dirty {
            p.write_u64(BASE + line * 64, value | 1); // nonzero marker
        }
        let cands = p.residual_candidates();
        p.crash_with(ResidualPolicy::Subset { mask });
        for (i, c) in cands.iter().enumerate() {
            let post = p.read_u64(c.off);
            if i < 64 && (mask >> i) & 1 == 1 {
                prop_assert_eq!(post, c.words[0], "rank {} should survive", i);
            } else {
                prop_assert_eq!(post, 0, "rank {} should vanish", i);
            }
        }
    }
}
