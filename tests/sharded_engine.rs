//! Integration tests for the engine layer: a range-partitioned
//! [`ShardedIndex`](pm_index_bench::engine::ShardedIndex) over every PM
//! inner kind must be observationally identical to a single flat index
//! — same conformance oracle, same cross-shard scans, same recovery
//! semantics — while keeping each shard on its own pool + allocator.

mod common;

use std::collections::BTreeMap;
use std::sync::Arc;

use common::{create_small, recover_small, PM_KINDS};
use pm_index_bench::engine::{shard_of, shard_start, Shard, ShardedIndex};
use pm_index_bench::index_api::oracle::{self, Op, Oracle};
use pm_index_bench::index_api::RangeIndex;
use pm_index_bench::pmalloc::{AllocMode, PmAllocator};
use pm_index_bench::pmem::{PmConfig, PmPool};
use proptest::prelude::*;

/// Spread a narrow key across the full keyspace (injective and
/// order-preserving), so oracle streams with heavy collisions still
/// straddle every shard boundary.
fn spread(k: u64, key_range: u64) -> u64 {
    k * (u64::MAX / key_range)
}

fn spread_op(op: Op, key_range: u64) -> Op {
    match op {
        Op::Insert(k, v) => Op::Insert(spread(k, key_range), v),
        Op::Lookup(k) => Op::Lookup(spread(k, key_range)),
        Op::Update(k, v) => Op::Update(spread(k, key_range), v),
        Op::Remove(k) => Op::Remove(spread(k, key_range)),
        Op::Scan(k, n) => Op::Scan(spread(k, key_range), n),
    }
}

/// A sharded stack of `kind` with small nodes, one 16 MiB pool per
/// shard.
fn build_sharded(kind: &str, shards: usize) -> Arc<ShardedIndex> {
    let parts = (0..shards)
        .map(|_| {
            let pool = Arc::new(PmPool::new(16 << 20, PmConfig::real()));
            let alloc = PmAllocator::format(pool.clone(), AllocMode::General);
            Shard {
                index: create_small(kind, alloc.clone()),
                pool: Some(pool),
                alloc: Some(alloc),
            }
        })
        .collect();
    ShardedIndex::from_parts(parts)
}

fn recover_sharded(kind: &str, pools: Vec<Arc<PmPool>>, parallel: bool) -> Arc<ShardedIndex> {
    ShardedIndex::recover_with(pools, parallel, |_, pool| {
        let alloc = PmAllocator::try_recover(pool, AllocMode::General)?;
        Ok((recover_small(kind, alloc.clone()), alloc))
    })
    .expect("shard recovery failed")
}

#[test]
fn sharded_conformance_for_every_pm_kind() {
    const KEY_RANGE: u64 = 256;
    for kind in PM_KINDS {
        for shards in [2usize, 5] {
            let idx = build_sharded(kind, shards);
            let mut model = Oracle::new();
            for op in oracle::random_ops(0xD1CE ^ shards as u64, 3_000, KEY_RANGE) {
                oracle::apply_and_compare(&*idx, &mut model, spread_op(op, KEY_RANGE));
            }
            // Final sweep across all shards must match the model.
            let want: Vec<_> = model.iter().collect();
            let mut got = Vec::new();
            idx.scan(0, want.len() + 1, &mut got);
            assert_eq!(got, want, "{kind} x{shards}: full scan mismatch");
            // The workload must actually have landed on several shards.
            let touched = idx
                .pools()
                .iter()
                .filter(|p| p.stats().write_ops > 0)
                .count();
            assert!(
                touched >= 2,
                "{kind} x{shards}: only {touched} shards touched"
            );
        }
    }
}

#[test]
fn double_recovery_is_idempotent() {
    for kind in PM_KINDS {
        let shards = 3;
        let idx = build_sharded(kind, shards);
        let stride = u64::MAX / 500;
        for i in 0..500u64 {
            assert!(idx.insert(i * stride, i), "{kind}");
        }
        let mut before = Vec::new();
        idx.scan(0, 600, &mut before);
        let pools = idx.pools();
        drop(idx);

        // First power cut + sequential recovery.
        for p in &pools {
            p.crash();
        }
        let r1 = recover_sharded(kind, pools.clone(), false);
        let mut after1 = Vec::new();
        r1.scan(0, 600, &mut after1);
        assert_eq!(after1, before, "{kind}: first recovery diverged");
        drop(r1);

        // Second cut with NO intervening writes: recovery must be
        // idempotent (same contents via the parallel fast path).
        for p in &pools {
            p.crash();
        }
        let r2 = recover_sharded(kind, pools, true);
        let mut after2 = Vec::new();
        r2.scan(0, 600, &mut after2);
        assert_eq!(after2, before, "{kind}: second recovery diverged");
        // Still writable after the double restart.
        assert!(r2.insert(u64::MAX - 9, 1), "{kind}");
        assert!(r2.remove(u64::MAX - 9), "{kind}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        .. ProptestConfig::default()
    })]

    /// Cross-shard scans: arbitrary key sets (possibly leaving shards
    /// empty), arbitrary starts, and counts exceeding the total record
    /// count must all match a flat BTreeMap reference exactly.
    #[test]
    fn cross_shard_scans_match_flat_reference(
        shards in 2usize..6,
        keys in proptest::collection::vec(0u64..300, 1..120),
        // Keys live in [lo, lo+span) of the narrow range, so small
        // spans leave leading/trailing shards empty after spreading.
        lo in 0u64..200,
        starts in proptest::collection::vec((0u64..320, 1usize..200), 1..12),
    ) {
        let idx = build_sharded("wbtree", shards);
        let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
        for &k in &keys {
            let key = spread(k + lo, 520);
            if reference.insert(key, k).is_none() {
                prop_assert!(idx.insert(key, k));
            } else {
                prop_assert!(idx.update(key, k));
            }
        }
        let total = reference.len();

        let mut out = Vec::new();
        for &(s, n) in &starts {
            let start = spread(s, 520);
            let got = idx.scan(start, n, &mut out);
            let want: Vec<(u64, u64)> = reference
                .range(start..)
                .take(n)
                .map(|(&k, &v)| (k, v))
                .collect();
            prop_assert_eq!(&out[..], &want[..], "scan({}, {})", start, n);
            prop_assert_eq!(got, want.len());
        }

        // A scan asking for more than everything returns everything,
        // in globally sorted order, straddling every populated shard.
        let got = idx.scan(0, total + 50, &mut out);
        prop_assert_eq!(got, total);
        let all: Vec<(u64, u64)> = reference.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(&out[..], &all[..]);
    }

    /// Partition math invariants the scan continuation relies on.
    #[test]
    fn partition_math_is_monotone_and_consistent(
        shards in 1usize..17,
        key in any::<u64>(),
    ) {
        let s = shard_of(key, shards);
        prop_assert!(s < shards);
        // The shard's own start key maps back into the shard.
        prop_assert_eq!(shard_of(shard_start(s, shards), shards), s);
        // And the key is not below its shard's start.
        prop_assert!(key >= shard_start(s, shards));
        if s + 1 < shards {
            prop_assert!(key < shard_start(s + 1, shards));
        }
    }
}
