//! Property-based tests for the net wire codec: arbitrary request and
//! response sequences survive encode → random stream splits → decode
//! byte-for-byte, and malformed frames of every flavor come back as
//! [`WireError`]s instead of panics.

use pm_index_bench::net::wire::{
    FrameBuf, Opcode, ReqOp, Request, Response, Status, WireError, MAX_FRAME, MAX_SCAN,
};
use proptest::prelude::*;

fn arb_reqop() -> impl Strategy<Value = ReqOp> {
    prop_oneof![
        3 => any::<u64>().prop_map(ReqOp::Lookup),
        3 => (any::<u64>(), any::<u64>()).prop_map(|(k, v)| ReqOp::Insert(k, v)),
        2 => (any::<u64>(), any::<u64>()).prop_map(|(k, v)| ReqOp::Update(k, v)),
        2 => any::<u64>().prop_map(ReqOp::Remove),
        2 => (any::<u64>(), 0u32..MAX_SCAN + 1).prop_map(|(k, n)| ReqOp::Scan(k, n)),
        1 => Just(ReqOp::Shutdown),
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    (any::<u64>(), arb_reqop()).prop_map(|(req_id, op)| Request { req_id, op })
}

fn arb_status() -> impl Strategy<Value = Status> {
    prop_oneof![
        4 => Just(Status::Ok),
        2 => Just(Status::Miss),
        1 => Just(Status::Overload),
        1 => Just(Status::Bad),
        1 => Just(Status::Draining),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        any::<u64>(),
        arb_reqop(),
        arb_status(),
        any::<u64>(),
        proptest::collection::vec((any::<u64>(), any::<u64>()), 0..50),
    )
        .prop_map(|(req_id, op, status, value, pairs)| {
            // The codec only carries a body on Ok, and only the body
            // matching the opcode; build the response the way the
            // server does so the round trip is exact.
            let op = op.opcode();
            let mut r = Response::basic(req_id, op, status);
            if status == Status::Ok {
                match op {
                    Opcode::Lookup => r.value = Some(value),
                    Opcode::Scan => r.pairs = pairs,
                    _ => {}
                }
            }
            r
        })
}

/// Feed `bytes` into a [`FrameBuf`] chopped at the given relative cut
/// points, draining complete frames after every push.
fn decode_split<T>(
    bytes: &[u8],
    cuts: &[usize],
    decode: impl Fn(&[u8]) -> Result<T, WireError>,
) -> Vec<T> {
    let mut splits: Vec<usize> = cuts.iter().map(|&c| c % (bytes.len() + 1)).collect();
    splits.sort_unstable();
    splits.push(bytes.len());
    let mut fb = FrameBuf::new();
    let mut out = Vec::new();
    let mut at = 0usize;
    for s in splits {
        if s > at {
            fb.push(&bytes[at..s]);
            at = s;
        }
        while let Some(p) = fb.next_frame().expect("well-formed stream") {
            out.push(decode(p).expect("well-formed payload"));
        }
    }
    assert_eq!(fb.pending(), 0, "no leftover bytes after the last frame");
    out
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    #[test]
    fn requests_roundtrip_across_arbitrary_splits(
        reqs in proptest::collection::vec(arb_request(), 1..80),
        cuts in proptest::collection::vec(any::<usize>(), 0..40),
    ) {
        let mut bytes = Vec::new();
        for r in &reqs {
            r.encode_into(&mut bytes);
        }
        let decoded = decode_split(&bytes, &cuts, Request::decode);
        prop_assert_eq!(decoded, reqs);
    }

    #[test]
    fn responses_roundtrip_across_arbitrary_splits(
        resps in proptest::collection::vec(arb_response(), 1..40),
        cuts in proptest::collection::vec(any::<usize>(), 0..40),
    ) {
        let mut bytes = Vec::new();
        for r in &resps {
            r.encode_into(&mut bytes);
        }
        let decoded = decode_split(&bytes, &cuts, Response::decode);
        prop_assert_eq!(decoded, resps);
    }

    #[test]
    fn mutated_request_frames_never_panic(
        req in arb_request(),
        flip in (any::<usize>(), any::<u8>()),
        truncate_to in any::<usize>(),
        extra in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        let (flip_at, flip_to) = flip;
        let mut bytes = Vec::new();
        req.encode_into(&mut bytes);
        let payload = bytes[4..].to_vec();

        // Single-byte corruption: must decode, error, or at worst
        // decode to a *different* valid request — never panic.
        let mut mutated = payload.clone();
        let at = flip_at % mutated.len();
        mutated[at] = flip_to;
        let _ = Request::decode(&mutated);

        // Truncation strictly shortens the payload → Truncated (or a
        // BadOpcode if the cut lands inside the opcode byte's prefix).
        let keep = truncate_to % payload.len();
        let r = Request::decode(&payload[..keep]);
        prop_assert!(r.is_err(), "truncated payload decoded: {:?}", r);

        // Trailing garbage is always rejected.
        if !extra.is_empty() {
            let mut long = payload.clone();
            long.extend_from_slice(&extra);
            let r = Request::decode(&long);
            prop_assert!(r.is_err(), "payload with trailing bytes decoded: {:?}", r);
        }
    }

    #[test]
    fn random_byte_soup_never_panics_the_framer(
        soup in proptest::collection::vec(any::<u8>(), 0..512),
        cuts in proptest::collection::vec(any::<usize>(), 0..16),
    ) {
        // Arbitrary bytes through the frame reassembler: each complete
        // frame either decodes or errors; an oversize prefix errors the
        // stream. Nothing panics.
        let mut splits: Vec<usize> = cuts.iter().map(|&c| c % (soup.len() + 1)).collect();
        splits.sort_unstable();
        splits.push(soup.len());
        let mut fb = FrameBuf::new();
        let mut at = 0usize;
        'outer: for s in splits {
            if s > at {
                fb.push(&soup[at..s]);
                at = s;
            }
            loop {
                match fb.next_frame() {
                    Ok(Some(p)) => {
                        let _ = Request::decode(p);
                        let _ = Response::decode(p);
                    }
                    Ok(None) => break,
                    Err(WireError::Oversize(n)) => {
                        prop_assert!(n as usize > MAX_FRAME);
                        break 'outer; // stream unrecoverable, as the server treats it
                    }
                    Err(e) => prop_assert!(false, "framer returned non-framing error {e}"),
                }
            }
        }
    }
}

#[test]
fn scan_count_guard_is_exact() {
    // MAX_SCAN itself is legal; one past it is rejected on both sides.
    let mut bytes = Vec::new();
    Request {
        req_id: 9,
        op: ReqOp::Scan(0, MAX_SCAN),
    }
    .encode_into(&mut bytes);
    assert!(Request::decode(&bytes[4..]).is_ok());

    let at = bytes.len() - 4;
    bytes[at..].copy_from_slice(&(MAX_SCAN + 1).to_le_bytes());
    assert_eq!(
        Request::decode(&bytes[4..]),
        Err(WireError::ScanTooLarge(MAX_SCAN + 1))
    );
}
